"""E12 (ablation) — the paper's k-edge rule vs. a recency window.

DESIGN.md calls out the counter-based k-edge mechanism (Section 5 of the
paper) as a key design choice.  The natural alternative is a working-set
rule: keep the W most recently executed units decompressed.  This
ablation traces both policies' memory/performance frontiers on the suite
so the choice is justified by data rather than assertion.

What the frontier shows: both policies trade memory for speed, and the
k-edge rule reaches the *low-memory* end of the frontier (k=1..2) that a
window cannot express (a window always holds W >= 1 full slots per
recently-run unit, while k-edge ages blocks out mid-burst).  At matched
average footprint the two are comparable on overhead — evidence that the
paper's mechanism costs nothing relative to the alternative while being
cheaper to implement (one counter per block, no global ordering).
"""

from __future__ import annotations

from conftest import record_experiment

from repro import api
from repro.analysis import Table, percent
from repro.cfg import build_cfg
from repro.core import SimulationConfig
from repro.runtime import PreparedTrace, simulate_trace
from repro.strategies import RecencyWindowCompression

K_VALUES = (1, 2, 4, 8, 16)
WINDOWS = (2, 3, 4, 8, 16)

_FAST = dict(trace_events=False, record_trace=False)


def _record_trace(cfg):
    """One interpreted run (uncompressed) records the block trace that
    every policy point replays — the shared-artifact fast path.

    The replay loops below stay on the internal engine layer
    (``simulate_trace`` with a custom compression policy) because the
    recency-window policy is an ablation object, not a registered
    strategy the declarative API can name.
    """
    manager, result = api.run_instrumented(
        cfg,
        SimulationConfig(decompression="none", trace_events=False,
                         record_trace=True),
    )
    if result.counters.blocks_executed != len(manager.block_trace):
        raise RuntimeError(
            f"block trace truncated at the recording cap "
            f"({len(manager.block_trace)} of "
            f"{result.counters.blocks_executed} blocks); replaying it "
            f"would silently skew the frontier metrics"
        )
    return PreparedTrace(cfg, manager.block_trace)


def _run_kedge(cfg, trace, k):
    return simulate_trace(
        cfg, trace,
        SimulationConfig(decompression="ondemand", k_compress=k, **_FAST),
    )


def _run_window(cfg, trace, window):
    return simulate_trace(
        cfg, trace,
        SimulationConfig(decompression="ondemand", k_compress=1, **_FAST),
        compression_policy=RecencyWindowCompression(window),
    )


def run_experiment(workloads):
    table = Table(
        "E12: k-edge vs recency-window frontiers (on-demand)",
        ["workload", "policy", "param", "avg_footprint", "overhead",
         "faults"],
    )
    frontiers = {}
    for workload in workloads:
        cfg = build_cfg(workload.program)
        trace = _record_trace(cfg)
        kedge_points = []
        for k in K_VALUES:
            result = _run_kedge(cfg, trace, k)
            table.add_row(
                workload.name, "k-edge", k,
                int(result.average_footprint),
                percent(result.cycle_overhead),
                int(result.counters.faults),
            )
            kedge_points.append(
                (result.average_footprint, result.cycle_overhead)
            )
        window_points = []
        for window in WINDOWS:
            result = _run_window(cfg, trace, window)
            table.add_row(
                workload.name, "window", window,
                int(result.average_footprint),
                percent(result.cycle_overhead),
                int(result.counters.faults),
            )
            window_points.append(
                (result.average_footprint, result.cycle_overhead)
            )
        frontiers[workload.name] = (kedge_points, window_points)
    return table, frontiers


def test_e12_kedge_vs_window(small_suite, benchmark):
    table, frontiers = run_experiment(small_suite)
    for name, (kedge_points, window_points) in frontiers.items():
        # k-edge reaches at least as low a memory point as any window
        min_kedge = min(f for f, _ in kedge_points)
        min_window = min(f for f, _ in window_points)
        assert min_kedge <= min_window + 1, name
        # both frontiers are monotone: more memory -> less overhead at
        # the frontier ends
        assert kedge_points[0][0] <= kedge_points[-1][0] + 1, name
        assert kedge_points[0][1] >= kedge_points[-1][1] - 0.01, name
    record_experiment("e12_kedge_vs_window", table.render())

    cfg = build_cfg(small_suite[0].program)
    trace = _record_trace(cfg)
    benchmark.pedantic(
        lambda: _run_window(cfg, trace, 4), rounds=1, iterations=1
    )
