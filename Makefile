# Developer/CI entry points.  `make verify` is the gate every change
# must pass: tier-1 tests plus the perf microbenchmarks in smoke mode
# (which fail on any codec-output divergence from the frozen seed
# implementation in src/repro/compress/reference.py).

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint bench bench-smoke experiments examples store-smoke \
	serve-smoke obs-smoke chaos docs verify

test:
	$(PYTHON) -m pytest -x -q

# Conservative ruff gate (see ruff.toml).  Skips gracefully when ruff
# is not installed locally; CI always installs and runs it.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	elif $(PYTHON) -c "import ruff" >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks examples; \
	else \
		echo "lint skipped: ruff not installed" \
			"(pip install ruff to run locally)"; \
	fi

bench:
	$(PYTHON) -m repro.cli bench

bench-smoke:
	$(PYTHON) -m repro.cli bench --smoke --no-write

experiments:
	$(PYTHON) -m pytest benchmarks/ -q

# Smoke-run every public-API example (they assert their own
# invariants), plus the sample spec file through the CLI, so the
# documented entry points can never rot.
examples:
	@set -e; for f in examples/*.py; do \
		echo "== $$f"; $(PYTHON) "$$f" > /dev/null; \
	done
	$(PYTHON) -m repro exp --spec examples/specs/kedge_grid.json \
		> /dev/null
	@echo "examples OK"

# Docs gate: the generated CLI reference must match the live argparse
# tree, and every fenced python/json snippet in docs/cookbook.md must
# execute against the real API.  Regenerate the CLI page with
# `python -m repro.cli docs` after changing flags/subcommands.
docs:
	$(PYTHON) -m repro.cli docs --check
	$(PYTHON) -m pytest tests/docs -q

# Run a tiny sweep twice against a throwaway store and assert the
# second run is served >= 90% from cache with a byte-identical result
# set (fingerprints, CAS round-trip, and cache-hit-equals-recompute,
# end to end through the public facade).
store-smoke:
	$(PYTHON) -m repro store smoke

# Boot a real sweep-service subprocess against a throwaway store:
# /healthz goes green, a submitted spec's /result is byte-identical
# to a local run_experiment on the same store, SIGTERM drains
# gracefully leaving a resumable journal (a second boot still dedups).
# Then the load harness proves the cached fast path sustains >= 1000
# requests/s.
serve-smoke:
	$(PYTHON) -m repro serve --smoke
	$(PYTHON) benchmarks/perf/load_service.py --smoke

# Observability gate: boot a real server subprocess, run one job,
# validate GET /metrics?format=prometheus against the exposition
# syntax checker, and assert /dashboard serves the self-contained
# live page (see docs/observability.md).
obs-smoke:
	$(PYTHON) -m repro obs smoke

# Seeded fault-injection scenarios (tests/chaos/): sweeps under
# injected worker crashes, hangs, transient faults and store
# corruption must recover byte-identical results or degrade into
# structured error rows — never abort, never cache a failure.
chaos:
	$(PYTHON) -m pytest tests/chaos -q

verify: lint test bench-smoke examples docs store-smoke serve-smoke \
		obs-smoke chaos
	@echo "verify OK: lint clean, tier-1 tests green, fast-path" \
		"output matches seed, examples run, docs in sync, store" \
		"serves repeat sweeps from cache, sweep service round-trips" \
		"and drains cleanly, observability endpoints validate," \
		"chaos suite survives injected faults"
