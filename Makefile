# Developer/CI entry points.  `make verify` is the gate every change
# must pass: tier-1 tests plus the perf microbenchmarks in smoke mode
# (which fail on any codec-output divergence from the frozen seed
# implementation in src/repro/compress/reference.py).

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-smoke experiments verify

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m repro.cli bench

bench-smoke:
	$(PYTHON) -m repro.cli bench --smoke --no-write

experiments:
	$(PYTHON) -m pytest benchmarks/ -q

verify: test bench-smoke
	@echo "verify OK: tier-1 tests green, fast-path output matches seed"
