"""docs/cli.md must stay in sync with the live argparse tree."""

import pathlib

from repro.cli import main, render_cli_docs

CLI_DOC = (
    pathlib.Path(__file__).parent.parent.parent / "docs" / "cli.md"
)


class TestCliDocsSync:
    def test_page_matches_generator(self):
        assert CLI_DOC.is_file(), (
            "docs/cli.md missing; generate with "
            "`python -m repro.cli docs`"
        )
        assert CLI_DOC.read_text(encoding="utf-8") == \
            render_cli_docs(), (
                "docs/cli.md is out of sync with the CLI; regenerate "
                "with `python -m repro.cli docs`"
            )

    def test_check_subcommand_agrees(self, capsys):
        assert main(["docs", "--check", "--output", str(CLI_DOC)]) == 0
        assert "in sync" in capsys.readouterr().out

    def test_check_detects_drift(self, tmp_path, capsys):
        stale = tmp_path / "cli.md"
        stale.write_text("# stale\n", encoding="utf-8")
        assert main(["docs", "--check", "--output", str(stale)]) == 1
        assert "out of sync" in capsys.readouterr().err

    def test_write_roundtrips_with_check(self, tmp_path):
        page = tmp_path / "cli.md"
        assert main(["docs", "--output", str(page)]) == 0
        assert main(["docs", "--check", "--output", str(page)]) == 0

    def test_every_subcommand_documented(self):
        text = render_cli_docs()
        for command in ("list", "inspect", "run", "sweep", "compare",
                        "exp", "store", "bench", "docs"):
            assert f"## `repro {command}`" in text, command

    def test_assignment_flag_documented(self):
        text = render_cli_docs()
        assert "--assignment POLICY" in text
