"""Execute every fenced snippet in docs/cookbook.md against the real API.

Docs rot when examples drift from the code; this runner makes the
cookbook executable documentation:

* every fenced ``python`` block runs in a fresh namespace with its cwd
  pointed at a temp dir (snippets may write files freely);
* every fenced ``json`` block must parse, and blocks shaped like
  experiment specs (they all are, by convention) must validate through
  :meth:`ExperimentSpec.from_dict`.

A snippet that needs to be exempted (none today) would use a different
info string (e.g. ``text``) — only ``python`` and ``json`` fences are
contracts.
"""

import json
import pathlib
import re

import pytest

from repro import api

COOKBOOK = (
    pathlib.Path(__file__).parent.parent.parent / "docs" / "cookbook.md"
)

_FENCE = re.compile(
    r"^```(?P<lang>python|json)\n(?P<body>.*?)^```$",
    re.MULTILINE | re.DOTALL,
)


def _snippets(lang):
    text = COOKBOOK.read_text(encoding="utf-8")
    out = []
    for match in _FENCE.finditer(text):
        if match.group("lang") != lang:
            continue
        line = text.count("\n", 0, match.start()) + 2
        out.append(
            pytest.param(
                match.group("body"), id=f"{lang}-L{line}"
            )
        )
    return out


def test_cookbook_exists_and_has_snippets():
    assert COOKBOOK.is_file()
    assert _snippets("python"), "cookbook lost its python snippets"
    assert _snippets("json"), "cookbook lost its json spec snippets"


@pytest.mark.parametrize("body", _snippets("python"))
def test_python_snippet_runs(body, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    namespace = {"__name__": "__cookbook__"}
    exec(compile(body, str(COOKBOOK), "exec"), namespace)


@pytest.mark.parametrize("body", _snippets("json"))
def test_json_snippet_is_a_valid_spec(body):
    data = json.loads(body)
    spec = api.ExperimentSpec.from_dict(data)
    assert spec.cells(), "spec expands to zero cells"
