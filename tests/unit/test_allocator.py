"""Unit tests for the free-list allocator."""

import pytest

from repro.memory import AllocationError, FreeListAllocator


class TestUnboundedAllocator:
    def test_sequential_allocation(self):
        alloc = FreeListAllocator()
        a = alloc.allocate(16)
        b = alloc.allocate(16)
        assert b == a + 16
        assert alloc.used_bytes == 32

    def test_alignment_rounds_up(self):
        alloc = FreeListAllocator(alignment=8)
        alloc.allocate(5)
        assert alloc.used_bytes == 8

    def test_free_and_reuse(self):
        alloc = FreeListAllocator()
        a = alloc.allocate(32)
        alloc.allocate(32)
        alloc.free(a)
        # first-fit reuses the hole
        assert alloc.allocate(32) == a

    def test_free_unknown_address_rejected(self):
        alloc = FreeListAllocator()
        with pytest.raises(AllocationError, match="no allocation"):
            alloc.free(0x100)

    def test_double_free_rejected(self):
        alloc = FreeListAllocator()
        a = alloc.allocate(8)
        alloc.free(a)
        with pytest.raises(AllocationError):
            alloc.free(a)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            FreeListAllocator().allocate(0)

    def test_peak_tracking(self):
        alloc = FreeListAllocator()
        a = alloc.allocate(100)
        alloc.free(a)
        alloc.allocate(10)
        assert alloc.peak_used_bytes == 100
        assert alloc.used_bytes == 12  # aligned to 4

    def test_extent_grows_monotonically(self):
        alloc = FreeListAllocator(base=64)
        alloc.allocate(16)
        assert alloc.extent_bytes == 16
        a = alloc.allocate(16)
        alloc.free(a)
        assert alloc.extent_bytes == 32  # extent never shrinks


class TestCoalescing:
    def test_adjacent_holes_merge(self):
        alloc = FreeListAllocator()
        a = alloc.allocate(16)
        b = alloc.allocate(16)
        c = alloc.allocate(16)
        alloc.allocate(16)  # keep a tail allocation
        alloc.free(a)
        alloc.free(c)
        assert alloc.hole_count == 2
        alloc.free(b)  # bridges both holes
        assert alloc.hole_count == 1
        assert alloc.largest_hole == 48

    def test_fragmentation_metric(self):
        alloc = FreeListAllocator()
        slots = [alloc.allocate(16) for _ in range(6)]
        for index in (0, 2, 4):
            alloc.free(slots[index])
        assert alloc.hole_count == 3
        assert 0 < alloc.external_fragmentation() < 1

    def test_single_hole_no_external_fragmentation(self):
        alloc = FreeListAllocator()
        a = alloc.allocate(16)
        alloc.allocate(16)
        alloc.free(a)
        assert alloc.external_fragmentation() == 0.0


class TestBoundedAllocator:
    def test_capacity_enforced(self):
        alloc = FreeListAllocator(capacity=64)
        alloc.allocate(48)
        with pytest.raises(AllocationError, match="cannot allocate"):
            alloc.allocate(32)
        assert alloc.failed_allocations == 1

    def test_fragmented_capacity_fails_large_request(self):
        alloc = FreeListAllocator(capacity=64)
        slots = [alloc.allocate(16) for _ in range(4)]
        alloc.free(slots[0])
        alloc.free(slots[2])
        # 32 bytes free but no 32-byte hole
        assert alloc.free_bytes == 32
        with pytest.raises(AllocationError):
            alloc.allocate(32)

    def test_base_offset_respected(self):
        alloc = FreeListAllocator(base=0x1000, capacity=64)
        assert alloc.allocate(16) == 0x1000


class TestCompaction:
    def test_compact_defragments(self):
        alloc = FreeListAllocator(capacity=64)
        slots = [alloc.allocate(16) for _ in range(4)]
        alloc.free(slots[0])
        alloc.free(slots[2])
        moved, relocations = alloc.compact()
        assert moved == 32  # two live slots moved down
        assert alloc.hole_count == 1
        assert alloc.largest_hole == 32
        assert alloc.allocate(32)  # now fits
        assert set(relocations) == {slots[1], slots[3]}

    def test_compact_noop_when_packed(self):
        alloc = FreeListAllocator()
        alloc.allocate(16)
        alloc.allocate(16)
        moved, relocations = alloc.compact()
        assert moved == 0
        assert relocations == {}

    def test_live_data_preserved_across_compact(self):
        alloc = FreeListAllocator(capacity=128)
        slots = {alloc.allocate(16): 16 for _ in range(4)}
        victim = next(iter(slots))
        alloc.free(victim)
        del slots[victim]
        _, relocations = alloc.compact()
        live = alloc.allocations()
        assert sum(live.values()) == sum(slots.values())
