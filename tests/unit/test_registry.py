"""Unit tests for the unified component registry."""

import pytest

from repro.registry import REGISTRIES, Registry, all_registries


class TestRegistry:
    def test_decorator_registration_and_lookup(self):
        reg = Registry("widgets-test", catalog=False)

        @reg.register("alpha")
        class Alpha:
            name = "placeholder"

        assert reg.get("alpha") is Alpha
        # The decorator stamps the registry key onto the class.
        assert Alpha.name == "alpha"
        assert isinstance(reg.create("alpha"), Alpha)

    def test_add_and_contains(self):
        reg = Registry("things-test", catalog=False)
        reg.add("x", 42)
        assert "x" in reg
        assert "y" not in reg
        assert reg.get("x") == 42
        assert len(reg) == 1

    def test_unknown_name_error_lists_available(self):
        reg = Registry("gadgets-test", item="gadget", catalog=False)
        reg.add("a", 1)
        with pytest.raises(KeyError, match="unknown gadget 'b'"):
            reg.get("b")
        with pytest.raises(KeyError, match=r"\['a'\]"):
            reg.get("b")

    def test_create_rejects_non_callable(self):
        reg = Registry("consts-test", catalog=False)
        reg.add("pi", 3.14)
        with pytest.raises(TypeError, match="not constructible"):
            reg.create("pi")

    def test_names_sorted_and_registration_order(self):
        reg = Registry("ordered-test", catalog=False)
        reg.add("b", 2)
        reg.add("a", 1)
        assert reg.names() == ["a", "b"]
        assert reg.names(sort=False) == ["b", "a"]

    def test_reregistration_replaces_without_duplicating(self):
        reg = Registry("redo-test", catalog=False)
        reg.add("k", 1)
        reg.add("k", 2)
        assert reg.get("k") == 2
        assert reg.names() == ["k"]

    def test_singular_item_name(self):
        assert Registry("testcodecs", catalog=False).item == "testcodec"
        # explicit item overrides the naive singulariser
        reg = Registry("strategies-test", item="strategy", catalog=False)
        with pytest.raises(KeyError, match="unknown strategy"):
            reg.get("nope")


class TestCatalog:
    def test_private_registries_stay_out_of_catalog(self):
        Registry("ephemeral-test", catalog=False)
        assert "ephemeral-test" not in all_registries()

    def test_duplicate_catalogued_kind_rejected(self):
        import repro.api  # noqa: F401  (catalogues "codecs")

        with pytest.raises(ValueError, match="already exists"):
            Registry("codecs")

    def test_core_families_present(self):
        # Importing the api facade pulls in every defining module.
        import repro.api  # noqa: F401

        catalog = all_registries()
        for kind in ("codecs", "strategies", "predictors", "workloads",
                     "engines", "executors"):
            assert kind in catalog, kind
            assert len(catalog[kind]) > 0, kind

    def test_known_members(self):
        import repro.api  # noqa: F401

        assert "shared-dict" in REGISTRIES["codecs"]
        assert "ondemand" in REGISTRIES["strategies"]
        assert "none" in REGISTRIES["strategies"]
        assert "online-profile" in REGISTRIES["predictors"]
        assert "fib" in REGISTRIES["workloads"]
        assert REGISTRIES["engines"].names(sort=False) == \
            ["machine", "trace"]
        assert set(REGISTRIES["executors"].names()) == \
            {"caching", "parallel", "serial"}

    def test_externally_registered_strategy_is_simulated(self):
        # The advertised extension point: registering a decompression
        # strategy must make the simulator actually *use* it, not just
        # accept its name.
        from repro.core import SimulationConfig
        from repro.core.manager import CodeCompressionManager
        from repro.cfg import build_cfg
        from repro.strategies import STRATEGIES, OnDemandDecompression
        from repro.workloads import get_workload

        @STRATEGIES.register("test-eager")
        class EagerOnDemand(OnDemandDecompression):
            """On-demand plus: pre-fetch every successor at block exit."""

            uses_thread = True
            instances = []

            def __init__(self):
                EagerOnDemand.instances.append(self)

            def on_block_exit(self, block_id):
                return sorted(self.view.cfg.successors(block_id))

        try:
            workload = get_workload("fib")
            manager = CodeCompressionManager(
                build_cfg(workload.program),
                SimulationConfig(decompression="test-eager",
                                 trace_events=False, record_trace=False),
            )
            assert isinstance(manager.decompression, EagerOnDemand)
            manager.run()
            assert workload.validate(manager.machine) == []
        finally:
            STRATEGIES.remove("test-eager")

    def test_legacy_helpers_ride_the_registry(self):
        from repro.compress import available_codecs, get_codec
        from repro.workloads import available_workloads, get_workload
        from repro.strategies import available_predictors

        assert available_codecs() == REGISTRIES["codecs"].names()
        assert available_workloads() == REGISTRIES["workloads"].names()
        assert available_predictors() == REGISTRIES["predictors"].names()
        assert get_codec("null").name == "null"
        assert get_workload("fib").name == "fib"
