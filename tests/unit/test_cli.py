"""Unit tests for the CLI."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "matmul" in out
        assert "shared-dict" in out
        assert "online-profile" in out
        assert "pre-single" in out


class TestInspect:
    def test_inspect_shows_cfg_and_ratios(self, capsys):
        assert main(["inspect", "fib"]) == 0
        out = capsys.readouterr().out
        assert "basic blocks" in out
        assert "CFG" in out
        assert "static compression" in out

    def test_inspect_disasm(self, capsys):
        assert main(["inspect", "fib", "--disasm"]) == 0
        out = capsys.readouterr().out
        assert "fib_loop:" in out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["inspect", "nope"])


class TestRun:
    def test_run_default(self, capsys):
        assert main(["run", "fib"]) == 0
        out = capsys.readouterr().out
        assert "validation: OK" in out
        assert "cycles:" in out

    def test_run_with_options(self, capsys):
        assert main([
            "run", "gcd", "--codec", "shared-fields",
            "--strategy", "pre-single", "--k-compress", "4",
            "--k-decompress", "3", "--predictor", "markov",
        ]) == 0
        assert "validation: OK" in capsys.readouterr().out

    def test_run_never_recompress(self, capsys):
        assert main(["run", "fib", "--k-compress", "0"]) == 0
        assert "kc" in capsys.readouterr().out

    def test_run_with_budget(self, capsys):
        assert main(["run", "crc32", "--budget", "4096"]) == 0


class TestSweep:
    def test_sweep_table(self, capsys):
        assert main(["sweep", "gcd", "--k-values", "1,4,inf"]) == 0
        out = capsys.readouterr().out
        assert "k-edge sweep" in out
        assert "inf" in out

    def test_sweep_row_count(self, capsys):
        main(["sweep", "fib", "--k-values", "1,2"])
        out = capsys.readouterr().out
        data_rows = [
            line for line in out.splitlines()
            if line and line[0].isdigit()
        ]
        assert len(data_rows) == 2


class TestCompare:
    def test_compare_strategies(self, capsys):
        assert main(["compare", "gcd"]) == 0
        out = capsys.readouterr().out
        for label in ("uncompressed", "ondemand", "pre-all",
                      "pre-single"):
            assert label in out
