"""Unit tests for the CLI."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "matmul" in out
        assert "shared-dict" in out
        assert "online-profile" in out
        assert "pre-single" in out

    def test_lists_every_registry_family(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        for kind in ("codecs", "strategies", "predictors",
                     "engines", "executors", "hierarchies",
                     "assignments"):
            assert f"{kind}:" in out, kind
        assert "machine, trace" in out
        assert "parallel, serial" in out

    def test_lists_at_least_three_hierarchy_presets(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        line = next(
            l for l in out.splitlines() if l.startswith("hierarchies:")
        )
        presets = [p.strip() for p in line.split(":", 1)[1].split(",")]
        assert len(presets) >= 3
        assert {"flat", "spm-front", "two-level-dram"} <= set(presets)


class TestInspect:
    def test_inspect_shows_cfg_and_ratios(self, capsys):
        assert main(["inspect", "fib"]) == 0
        out = capsys.readouterr().out
        assert "basic blocks" in out
        assert "CFG" in out
        assert "static compression" in out

    def test_inspect_disasm(self, capsys):
        assert main(["inspect", "fib", "--disasm"]) == 0
        out = capsys.readouterr().out
        assert "fib_loop:" in out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["inspect", "nope"])


class TestRun:
    def test_run_default(self, capsys):
        assert main(["run", "fib"]) == 0
        out = capsys.readouterr().out
        assert "validation: OK" in out
        assert "cycles:" in out

    def test_run_with_options(self, capsys):
        assert main([
            "run", "gcd", "--codec", "shared-fields",
            "--strategy", "pre-single", "--k-compress", "4",
            "--k-decompress", "3", "--predictor", "markov",
        ]) == 0
        assert "validation: OK" in capsys.readouterr().out

    def test_run_never_recompress(self, capsys):
        assert main(["run", "fib", "--k-compress", "0"]) == 0
        assert "kc" in capsys.readouterr().out

    def test_run_with_budget(self, capsys):
        assert main(["run", "crc32", "--budget", "4096"]) == 0


class TestPipelineCodecOption:
    def test_run_accepts_compact_pipeline_spec(self, capsys):
        assert main(
            ["run", "fib", "--codec", "delta|huffman"]
        ) == 0
        assert "validation: OK" in capsys.readouterr().out

    def test_run_accepts_json_pipeline_spec(self, capsys):
        assert main([
            "run", "fib", "--codec",
            '{"layers": ["stride:4"], "entropy": "shared-dict"}',
        ]) == 0
        assert "validation: OK" in capsys.readouterr().out

    def test_unknown_layer_rejected_with_message(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "fib", "--codec", "bogus|huffman"])
        assert excinfo.value.code != 0
        err = capsys.readouterr().err
        assert "unknown transform 'bogus'" in err
        assert "delta" in err  # names what *is* available

    def test_empty_segment_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "fib", "--codec", "|huffman"])
        assert excinfo.value.code != 0
        assert "empty segment" in capsys.readouterr().err

    def test_pipeline_entropy_stage_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "fib", "--codec", "delta|"])
        assert excinfo.value.code != 0
        assert "empty segment" in capsys.readouterr().err

    def test_unknown_flat_codec_suggests_pipelines(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "fib", "--codec", "nope"])
        assert excinfo.value.code != 0
        err = capsys.readouterr().err
        assert "unknown codec 'nope'" in err
        assert "pipeline spec" in err

    def test_list_shows_pipelines_and_transforms(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "pipelines:" in out
        assert "transforms:" in out
        assert "stride:4|shared-dict" in out
        assert "pipeline spec grammar" in out


class TestSweep:
    def test_sweep_table(self, capsys):
        assert main(["sweep", "gcd", "--k-values", "1,4,inf"]) == 0
        out = capsys.readouterr().out
        assert "k-edge sweep" in out
        assert "inf" in out

    def test_sweep_row_count(self, capsys):
        main(["sweep", "fib", "--k-values", "1,2"])
        out = capsys.readouterr().out
        data_rows = [
            line for line in out.splitlines()
            if line and line[0].isdigit()
        ]
        assert len(data_rows) == 2

    def test_sweep_accepts_none_for_infinity(self, capsys):
        assert main(["sweep", "fib", "--k-values", "1,none"]) == 0
        assert "inf" in capsys.readouterr().out

    def test_sweep_hierarchy_changes_traffic_and_energy(self, capsys):
        def table_numbers(hierarchy):
            assert main([
                "sweep", "dijkstra", "--k-values", "1,4",
                "--hierarchy", hierarchy,
            ]) == 0
            out = capsys.readouterr().out
            assert hierarchy in out
            rows = [
                line.split() for line in out.splitlines()
                if line and line[0].isdigit()
            ]
            # (traffic_B, energy_nJ) are the last two columns.
            return [(row[-2], row[-1]) for row in rows]

        flat = table_numbers("flat")
        spm = table_numbers("spm-front")
        assert len(flat) == len(spm) == 2
        assert flat != spm

    def test_sweep_rejects_unknown_hierarchy(self):
        with pytest.raises(SystemExit):
            main(["sweep", "fib", "--hierarchy", "warp"])

    def test_sweep_rejects_zero_k(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "gcd", "--k-values", "0"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "k must be >= 1" in err
        assert "'inf'" in err

    def test_sweep_rejects_negative_and_garbage_k(self):
        for bad in ("-4", "1,fast", ""):
            with pytest.raises(SystemExit):
                main(["sweep", "gcd", "--k-values", bad])

    def test_sweep_trace_engine_matches_machine(self, capsys):
        assert main(["sweep", "gcd", "--k-values", "1,4",
                     "--engine", "trace"]) == 0
        trace_out = capsys.readouterr().out
        assert main(["sweep", "gcd", "--k-values", "1,4",
                     "--engine", "machine"]) == 0
        assert capsys.readouterr().out == trace_out

    def test_sweep_jobs_flag(self, capsys):
        assert main(["sweep", "fib", "--k-values", "1,2",
                     "--jobs", "2"]) == 0
        assert "k-edge sweep" in capsys.readouterr().out


class TestAssignmentCLI:
    def test_run_with_assignment(self, capsys):
        assert main(["run", "composite",
                     "--assignment", "knapsack"]) == 0
        out = capsys.readouterr().out
        assert "knapsack" in out
        assert "validation: OK" in out

    def test_sweep_assignment_changes_results(self, capsys):
        def sweep(policy):
            assert main([
                "sweep", "composite", "--k-values", "2",
                "--engine", "trace", "--assignment", policy,
            ]) == 0
            return capsys.readouterr().out

        uniform = sweep("uniform")
        hot = sweep("hotness-threshold")
        assert uniform != hot

    def test_compare_with_parameterised_assignment(self, capsys):
        assert main(["compare", "gcd",
                     "--assignment", "knapsack:0.9"]) == 0
        assert "design space" in capsys.readouterr().out

    def test_unknown_assignment_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "fib", "--assignment", "warp"])
        assert excinfo.value.code == 2
        assert "unknown assignment" in capsys.readouterr().err

    def test_bad_assignment_parameter_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "fib", "--assignment", "knapsack:0"])
        assert "invalid parameters" in capsys.readouterr().err

    def test_uncompressed_strategy_skips_profiling_run(
        self, capsys, monkeypatch
    ):
        # strategy=none builds no image, so the assignment is inert —
        # the CLI must not pay for (or pretend to use) a profile.
        import repro.api as api_mod

        def boom(*_args, **_kwargs):
            raise AssertionError("profiled an uncompressed run")

        monkeypatch.setattr(api_mod, "profile_workload", boom)
        assert main(["run", "fib", "--strategy", "none",
                     "--assignment", "knapsack"]) == 0
        assert "validation: OK" in capsys.readouterr().out


class TestCompare:
    def test_compare_strategies(self, capsys):
        assert main(["compare", "gcd"]) == 0
        out = capsys.readouterr().out
        for label in ("uncompressed", "ondemand", "pre-all",
                      "pre-single"):
            assert label in out

    def test_compare_trace_engine(self, capsys):
        assert main(["compare", "gcd", "--engine", "trace"]) == 0
        assert "design space" in capsys.readouterr().out


class TestExp:
    SPEC = {
        "name": "cli-test",
        "workloads": ["fib", "gcd"],
        "base": {"codec": "shared-dict", "decompression": "ondemand"},
        "axes": {"grid": {"k_compress": [1, "inf"]}},
        "engine": "trace",
    }

    def _write_spec(self, tmp_path, spec=None):
        import json

        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec or self.SPEC))
        return str(path)

    def test_exp_runs_spec(self, capsys, tmp_path):
        assert main(["exp", "--spec",
                     self._write_spec(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "experiment 'cli-test'" in out
        assert "4 cells over 2 workloads" in out
        assert "schema v1" in out

    def test_exp_writes_versioned_json_and_csv(self, capsys, tmp_path):
        import json

        out_json = tmp_path / "rs.json"
        out_csv = tmp_path / "rs.csv"
        assert main([
            "exp", "--spec", self._write_spec(tmp_path),
            "--jobs", "2",
            "--output", str(out_json), "--csv", str(out_csv),
        ]) == 0
        data = json.loads(out_json.read_text())
        assert data["schema"] == "repro.api.resultset"
        assert data["version"] == 1
        assert len(data["cells"]) == 4
        assert data["execution"]["executor"] == "parallel"
        assert out_csv.read_text().startswith("workload,label,")

    def test_exp_engine_override(self, capsys, tmp_path):
        assert main([
            "exp", "--spec", self._write_spec(tmp_path),
            "--engine", "machine",
        ]) == 0
        assert "machine engine" in capsys.readouterr().out

    def test_exp_missing_spec_file(self, capsys, tmp_path):
        assert main(["exp", "--spec",
                     str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_exp_bad_spec(self, capsys, tmp_path):
        path = self._write_spec(
            tmp_path, {"workloads": ["fib"], "axes": {"warp": {}}}
        )
        assert main(["exp", "--spec", path]) == 2
        assert "axes operator" in capsys.readouterr().err

    def test_exp_raising_cells_exit_nonzero_and_are_named(
        self, capsys, tmp_path
    ):
        spec = dict(self.SPEC)
        spec["base"] = {**spec["base"], "max_steps": 5}
        assert main(["exp", "--spec",
                     self._write_spec(tmp_path, spec)]) == 1
        captured = capsys.readouterr()
        assert "4 cell(s) failed" in captured.err
        from repro.log import parse_kv

        rows = [
            parse_kv(line) for line in captured.err.splitlines()
            if "event=cell.failed" in line
        ]
        assert len(rows) == 4
        assert {"fib", "gcd"} == {row["workload"] for row in rows}
        assert any(row["label"] == "ondemand/kc=1" for row in rows)
        assert all("MachineError" in row["error"] for row in rows)
        # The table still lists every cell (nothing silently dropped).
        assert captured.out.count(" NO") == 4


class TestExpAssignmentOverride:
    def test_exp_assignment_override(self, capsys, tmp_path):
        import json

        spec = dict(TestExp.SPEC)
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        out_csv = tmp_path / "rs.csv"
        assert main([
            "exp", "--spec", str(path),
            "--assignment", "hotness-threshold",
            "--csv", str(out_csv),
        ]) == 0
        header, *rows = out_csv.read_text().splitlines()
        column = header.split(",").index("assignment")
        assert all(
            row.split(",")[column] == "hotness-threshold"
            for row in rows
        )

    def test_exp_rejects_bad_assignment_override(self, capsys, tmp_path):
        import json

        path = tmp_path / "spec.json"
        path.write_text(json.dumps(TestExp.SPEC))
        with pytest.raises(SystemExit):
            main(["exp", "--spec", str(path),
                  "--assignment", "warp"])

    def test_exp_override_beats_assignment_axis(self, capsys, tmp_path):
        # Axis overrides win over base during expansion; --assignment
        # must still force every cell, including axis-swept ones.
        import json

        spec = {
            "workloads": ["fib"],
            "base": {"codec": "shared-dict",
                     "decompression": "ondemand"},
            "axes": {"grid": {"assignment": ["uniform", "knapsack"]}},
            "engine": "trace",
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        out_csv = tmp_path / "rs.csv"
        assert main([
            "exp", "--spec", str(path),
            "--assignment", "hotness-threshold",
            "--csv", str(out_csv),
        ]) == 0
        header, *rows = out_csv.read_text().splitlines()
        column = header.split(",").index("assignment")
        assert rows and all(
            row.split(",")[column] == "hotness-threshold"
            for row in rows
        )


class TestStoreCLI:
    def _sweep(self, store):
        return ["sweep", "gcd", "--k-values", "1,4",
                "--store", str(store)]

    def test_sweep_store_flag_caches_and_output_identical(
        self, capsys, tmp_path
    ):
        store = tmp_path / "store"
        assert main(self._sweep(store)) == 0
        first_out = capsys.readouterr().out
        assert main(self._sweep(store)) == 0
        assert capsys.readouterr().out == first_out
        assert main(["store", "stats", "--store", str(store)]) == 0
        stats_out = capsys.readouterr().out
        assert "cells:     2" in stats_out
        assert "2 hits" in stats_out

    def test_no_cache_ignores_store_env(self, capsys, tmp_path,
                                        monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "env"))
        assert main(["sweep", "gcd", "--k-values", "1",
                     "--no-cache"]) == 0
        capsys.readouterr()
        # --no-cache means the env store is never even created.
        assert not (tmp_path / "env").exists()

    def test_stats_refuses_nonexistent_store(self, capsys, tmp_path):
        assert main(["store", "stats", "--store",
                     str(tmp_path / "typo")]) == 2
        assert "no experiment store" in capsys.readouterr().err
        assert not (tmp_path / "typo").exists()

    def test_store_env_opt_in(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "env"))
        assert main(["sweep", "gcd", "--k-values", "1"]) == 0
        capsys.readouterr()
        assert main(["store", "stats", "--store",
                     str(tmp_path / "env")]) == 0
        assert "cells:     1" in capsys.readouterr().out

    def test_exp_store_flag(self, capsys, tmp_path):
        import json

        path = tmp_path / "spec.json"
        path.write_text(json.dumps(TestExp.SPEC))
        store = tmp_path / "store"
        args = ["exp", "--spec", str(path), "--store", str(store)]
        assert main(args) == 0
        assert "cache 0 hit(s) / 4 miss(es)" in \
            capsys.readouterr().out
        assert main(args) == 0
        assert "cache 4 hit(s) / 0 miss(es)" in \
            capsys.readouterr().out

    def test_store_gc_and_clear(self, capsys, tmp_path):
        store = tmp_path / "store"
        assert main(self._sweep(store)) == 0
        capsys.readouterr()
        assert main(["store", "gc", "--store", str(store)]) == 0
        assert "removed 0 blob(s)" in capsys.readouterr().out
        assert main(["store", "clear", "--store", str(store)]) == 0
        capsys.readouterr()
        assert main(["store", "stats", "--store", str(store)]) == 0
        assert "cells:     0" in capsys.readouterr().out

    def test_store_smoke(self, capsys, tmp_path):
        assert main(["store", "smoke", "--store",
                     str(tmp_path / "smoke")]) == 0
        out = capsys.readouterr().out
        assert "store smoke OK" in out
        assert "byte-identical: yes" in out


class TestRetryFlags:
    def test_sweep_accepts_retry_flags(self, capsys):
        assert main(["sweep", "gcd", "--k-values", "1",
                     "--retries", "2", "--cell-timeout", "30"]) == 0
        assert "k-edge sweep" in capsys.readouterr().out

    def test_retries_recover_an_injected_fault(self, capsys,
                                               monkeypatch):
        from repro.faults import FAULTS_ENV, FaultPlan, FaultRule

        plan = FaultPlan(rules=(
            FaultRule(kind="transient", site="cell", match="gcd",
                      times=1),
        ))
        monkeypatch.setenv(FAULTS_ENV, plan.to_json())
        # Without retries the injected fault fails the cell ...
        assert main(["sweep", "gcd", "--k-values", "1"]) == 1
        capsys.readouterr()
        # ... with --retries the same command succeeds.
        monkeypatch.setenv(FAULTS_ENV, plan.to_json())
        assert main(["sweep", "gcd", "--k-values", "1",
                     "--retries", "1"]) == 0
        capsys.readouterr()

    def test_negative_retries_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "gcd", "--k-values", "1",
                  "--retries", "-1"])
        capsys.readouterr()


class TestStoreVerifyCLI:
    def _corrupt_one(self, store):
        import os

        base = os.path.join(str(store), "objects")
        for fan in sorted(os.listdir(base)):
            fan_dir = os.path.join(base, fan)
            for name in sorted(os.listdir(fan_dir)):
                with open(os.path.join(fan_dir, name), "ab") as handle:
                    handle.write(b"rot")
                return
        raise AssertionError("no objects to corrupt")

    def test_verify_clean_store(self, capsys, tmp_path):
        store = tmp_path / "store"
        assert main(["sweep", "gcd", "--k-values", "1",
                     "--store", str(store)]) == 0
        capsys.readouterr()
        assert main(["store", "verify", "--store", str(store)]) == 0
        assert "store verify OK" in capsys.readouterr().out

    def test_verify_reports_damage_then_repairs(self, capsys,
                                                tmp_path):
        store = tmp_path / "store"
        assert main(["sweep", "gcd", "--k-values", "1,4",
                     "--store", str(store)]) == 0
        capsys.readouterr()
        self._corrupt_one(store)
        assert main(["store", "verify", "--store", str(store)]) == 1
        captured = capsys.readouterr()
        assert "1 corrupt" in captured.out
        assert "--repair" in captured.err
        assert main(["store", "verify", "--repair",
                     "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "1 quarantined" in out
        assert (store / "quarantine").is_dir()
        assert main(["store", "verify", "--store", str(store)]) == 0
        assert "store verify OK" in capsys.readouterr().out

    def test_stats_prints_corrupt_misses(self, capsys, tmp_path):
        store = tmp_path / "store"
        assert main(["sweep", "gcd", "--k-values", "1",
                     "--store", str(store)]) == 0
        capsys.readouterr()
        assert main(["store", "stats", "--store", str(store)]) == 0
        assert "corrupt miss(es)" in capsys.readouterr().out


class TestBenchCLI:
    def test_only_runs_a_single_benchmark(self, capsys, tmp_path,
                                          monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--smoke", "--only", "bitio_bulk"]) == 0
        out = capsys.readouterr().out
        assert "bitio bulk" in out
        assert "codec round-trips" not in out
        assert "ok: True" in out
        # A filtered run is partial: the default report file must not
        # be clobbered with it.
        assert not (tmp_path / "BENCH_core.json").exists()

    def test_only_with_explicit_output_writes_partial_report(
            self, capsys, tmp_path):
        import json

        path = tmp_path / "partial.json"
        assert main(["bench", "--smoke", "--only", "bitio_bulk",
                     "--output", str(path)]) == 0
        capsys.readouterr()
        report = json.loads(path.read_text())
        assert "bitio_bulk" in report
        assert "e1_sweep" not in report
        assert report["ok"] is True

    def test_repeat_reports_the_median(self, capsys):
        assert main(["bench", "--smoke", "--only", "bitio_bulk",
                     "--repeat", "3", "--no-write"]) == 0
        assert "bitio bulk" in capsys.readouterr().out

    def test_unknown_benchmark_name_rejected(self, capsys):
        assert main(["bench", "--only", "nope", "--no-write"]) == 2
        err = capsys.readouterr().err
        assert "unknown benchmark 'nope'" in err
        assert "bitio_bulk" in err

    def test_zero_repeat_rejected(self, capsys):
        assert main(["bench", "--only", "bitio_bulk", "--repeat", "0",
                     "--no-write"]) == 2
        assert "repeat" in capsys.readouterr().err
