"""Unit tests for bit-level I/O."""

import pytest

from repro.compress.bitio import BitIOError, BitReader, BitWriter


class TestBitWriter:
    def test_msb_first_packing(self):
        writer = BitWriter()
        for bit in (1, 0, 1, 0, 1, 0, 1, 0):
            writer.write_bit(bit)
        assert writer.getvalue() == b"\xaa"

    def test_partial_byte_zero_padded(self):
        writer = BitWriter()
        writer.write_bits(0b101, 3)
        assert writer.getvalue() == bytes((0b1010_0000,))

    def test_bit_length_tracks_exact_bits(self):
        writer = BitWriter()
        writer.write_bits(0x3, 2)
        writer.write_bits(0x1F, 5)
        assert writer.bit_length == 7

    def test_invalid_bit_rejected(self):
        with pytest.raises(BitIOError):
            BitWriter().write_bit(2)

    def test_value_too_wide_rejected(self):
        with pytest.raises(BitIOError, match="does not fit"):
            BitWriter().write_bits(8, 3)

    def test_negative_width_rejected(self):
        with pytest.raises(BitIOError):
            BitWriter().write_bits(0, -1)

    def test_unary(self):
        writer = BitWriter()
        writer.write_unary(3)
        # 1110 padded
        assert writer.getvalue() == bytes((0b1110_0000,))

    def test_empty_writer(self):
        assert BitWriter().getvalue() == b""

    def test_write_bytes_aligned(self):
        writer = BitWriter()
        writer.write_bytes(b"\xde\xad\xbe\xef")
        assert writer.bit_length == 32
        assert writer.getvalue() == b"\xde\xad\xbe\xef"

    def test_write_bytes_unaligned(self):
        writer = BitWriter()
        writer.write_bit(1)
        payload = bytes(range(256)) * 3  # spans multiple chunks
        writer.write_bytes(payload)
        reader = BitReader(writer.getvalue())
        assert reader.read_bit() == 1
        assert reader.read_bytes(len(payload)) == payload

    def test_oversized_value_rejected_for_wide_fields(self):
        # width >= 64 must be range-checked too (seed gap).
        with pytest.raises(BitIOError, match="does not fit"):
            BitWriter().write_bits(1 << 64, 64)


class TestBitReader:
    def test_read_back_bits(self):
        writer = BitWriter()
        writer.write_bits(0b110101, 6)
        reader = BitReader(writer.getvalue())
        assert reader.read_bits(6) == 0b110101

    def test_exhaustion_raises(self):
        reader = BitReader(b"\xff")
        reader.read_bits(8)
        with pytest.raises(BitIOError, match="exhausted"):
            reader.read_bit()

    def test_bits_remaining(self):
        reader = BitReader(b"\x00\x00")
        assert reader.bits_remaining == 16
        reader.read_bits(5)
        assert reader.bits_remaining == 11

    def test_read_bytes_aligned_and_unaligned(self):
        reader = BitReader(b"\xab\xcd\xef")
        assert reader.read_bytes(2) == b"\xab\xcd"
        reader = BitReader(b"\xab\xcd\xef")
        reader.read_bits(4)
        assert reader.read_bytes(2) == b"\xbc\xde"
        with pytest.raises(BitIOError, match="exhausted"):
            reader.read_bytes(2)

    def test_skip_and_peek(self):
        reader = BitReader(b"\xf0\x0f")
        assert reader.peek_bits(4) == 0xF
        assert reader.bit_position == 0
        reader.skip_bits(4)
        assert reader.read_bits(8) == 0x00
        # Peeking past the end pads with zeros without consuming.
        assert reader.peek_bits(16) == 0xF << 12
        with pytest.raises(BitIOError, match="exhausted"):
            reader.skip_bits(5)

    def test_unary_roundtrip(self):
        writer = BitWriter()
        for value in (0, 1, 5, 13):
            writer.write_unary(value)
        reader = BitReader(writer.getvalue())
        assert [reader.read_unary() for _ in range(4)] == [0, 1, 5, 13]

    def test_gamma_roundtrip(self):
        writer = BitWriter()
        values = [1, 2, 3, 7, 8, 100, 65535]
        for value in values:
            writer.write_gamma(value)
        reader = BitReader(writer.getvalue())
        assert [reader.read_gamma() for _ in range(len(values))] == values

    def test_gamma_rejects_zero(self):
        with pytest.raises(BitIOError):
            BitWriter().write_gamma(0)

    def test_interleaved_fields(self):
        writer = BitWriter()
        writer.write_bit(1)
        writer.write_bits(0xAB, 8)
        writer.write_unary(2)
        writer.write_bits(0x3, 2)
        reader = BitReader(writer.getvalue())
        assert reader.read_bit() == 1
        assert reader.read_bits(8) == 0xAB
        assert reader.read_unary() == 2
        assert reader.read_bits(2) == 0x3
