"""Unit tests for the analysis helpers (tables, series, sweeps)."""

import pytest

from repro.analysis import (
    Series,
    Table,
    geometric_mean,
    mean,
    percent,
    run_one,
    sweep,
)
from repro.core import SimulationConfig
from repro.workloads import get_workload


class TestTable:
    def test_add_and_render(self):
        table = Table("demo", ["name", "value"])
        table.add_row("a", 1.23456)
        table.add_row("b", 2)
        text = table.render()
        assert "demo" in text
        assert "1.235" in text  # 3-decimal float formatting
        assert "b" in text

    def test_row_width_checked(self):
        table = Table("demo", ["one"])
        with pytest.raises(ValueError, match="cells"):
            table.add_row(1, 2)

    def test_column_extraction(self):
        table = Table("demo", ["x", "y"])
        table.add_row(1, 10)
        table.add_row(2, 20)
        assert table.column("y") == [10, 20]

    def test_notes_rendered(self):
        table = Table("demo", ["x"])
        table.add_note("hello")
        assert "note: hello" in table.render()

    def test_percent(self):
        assert percent(0.1234) == "12.3%"


class TestSeries:
    def test_monotonicity_checks(self):
        series = Series("s", "k", "overhead")
        for x, y in ((1, 9.0), (2, 5.0), (4, 5.0), (8, 2.0)):
            series.add(x, y)
        assert series.is_monotone_nonincreasing()
        assert not series.is_monotone_nondecreasing()

    def test_tolerance(self):
        series = Series("s", "k", "y")
        series.add(1, 1.0)
        series.add(2, 1.05)
        assert series.is_monotone_nonincreasing(tolerance=0.1)

    def test_render(self):
        series = Series("lbl", "k", "v")
        series.add(1, 2.0)
        assert "lbl" in series.render()
        assert "(1, 2.000)" in series.render()


class TestMeans:
    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_mean_empty(self):
        assert mean([]) == 0.0
        assert mean([1, 2, 3]) == 2.0


class TestSweep:
    def test_run_one_validates(self):
        run = run_one(get_workload("fib"), SimulationConfig())
        assert run.ok
        assert run.result.total_cycles > 0

    def test_sweep_grid(self):
        workloads = [get_workload("fib"), get_workload("gcd")]
        configs = [
            SimulationConfig(k_compress=1),
            SimulationConfig(k_compress=None),
        ]
        result = sweep(workloads, configs)
        assert len(result.runs) == 4
        assert result.workloads() == ["fib", "gcd"]
        assert len(result.by_workload("fib")) == 2
        assert result.failures() == []

    def test_sweep_fast_mode_disables_tracing(self):
        result = sweep([get_workload("fib")], [SimulationConfig()])
        run = result.runs[0]
        assert run.result.block_trace == []
