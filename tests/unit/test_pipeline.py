"""Unit tests for layered pipeline specs, codecs, and the registries."""

import pytest

from repro.compress import (
    CANDIDATE_PIPELINES,
    CodecError,
    PipelineCodec,
    PipelineError,
    PipelineSpec,
    available_pipelines,
    available_transforms,
    get_codec,
    is_known_codec,
    is_pipeline_spec,
    parse_pipeline_payload,
    parse_pipeline_spec,
    resolve_codec_spec,
)
from repro.core import ConfigError, SimulationConfig
from repro.selection import (
    AssignmentError,
    PipelineSearchAssignment,
    available_assignments,
    validate_assignment,
)


class TestSpecParsing:
    def test_compact_form(self):
        spec = parse_pipeline_spec("delta|stride:4|huffman")
        assert spec.layers == (("delta", ()), ("stride", (4,)))
        assert spec.entropy == "huffman"
        assert spec.compact == "delta|stride:4|huffman"

    def test_json_form_matches_compact(self):
        compact = parse_pipeline_spec("delta|stride:4|huffman")
        spelled = parse_pipeline_spec(
            '{"layers": ["delta", {"kind": "stride", "params": [4]}],'
            ' "entropy": "huffman"}'
        )
        assert spelled == compact
        assert spelled.to_json() == {
            "layers": ["delta", "stride:4"], "entropy": "huffman",
        }

    def test_whitespace_is_tolerated(self):
        assert parse_pipeline_spec(" delta | huffman ").compact \
            == "delta|huffman"

    def test_flat_entropy_only(self):
        spec = parse_pipeline_spec('{"entropy": "rle"}')
        assert spec == PipelineSpec(layers=(), entropy="rle")

    @pytest.mark.parametrize("bad, message", [
        ("", "non-empty"),
        ("|huffman", "empty segment"),
        ("delta|", "empty segment"),
        ("bogus|huffman", "unknown transform 'bogus'"),
        ("delta|bogus", "unknown entropy codec 'bogus'"),
        ("delta|stride:x|rle", "not an integer"),
        ("stride:99|rle", "invalid parameters"),
        ("{not json", "not valid JSON"),
        ('{"entropy": "rle", "x": 1}', "unknown pipeline spec keys"),
        ('{"layers": "delta", "entropy": "rle"}', "must be a list"),
        ('{"layers": [], "entropy": "delta|rle"}', "must be a flat"),
    ])
    def test_malformed_specs_raise_typed_errors(self, bad, message):
        with pytest.raises(PipelineError, match=message):
            parse_pipeline_spec(bad)

    def test_is_pipeline_spec(self):
        assert is_pipeline_spec("delta|huffman")
        assert is_pipeline_spec('{"entropy": "rle"}')
        assert is_pipeline_spec({"entropy": "rle"})
        assert not is_pipeline_spec("huffman")


class TestResolveCodecSpec:
    def test_flat_names_pass_through(self):
        assert resolve_codec_spec("huffman") == "huffman"

    def test_pipeline_specs_canonicalize(self):
        assert resolve_codec_spec(
            '{"layers": ["delta"], "entropy": "huffman"}'
        ) == "delta|huffman"

    def test_unknown_names_mention_pipelines(self):
        with pytest.raises(CodecError, match="pipeline spec"):
            resolve_codec_spec("nope")
        assert not is_known_codec("nope")
        assert is_known_codec("delta|huffman")

    def test_config_canonicalizes_codec(self):
        compact = SimulationConfig(codec="delta|huffman")
        spelled = SimulationConfig(
            codec='{"layers": ["delta"], "entropy": "huffman"}'
        )
        assert compact.codec == spelled.codec == "delta|huffman"

    def test_config_rejects_bad_spec(self):
        with pytest.raises(ConfigError, match="unknown transform"):
            SimulationConfig(codec="bogus|huffman")


class TestPipelineCodec:
    def test_name_is_canonical_compact_spec(self):
        codec = get_codec('{"layers": ["mtf"], "entropy": "rle"}')
        assert isinstance(codec, PipelineCodec)
        assert codec.name == "mtf|rle"

    def test_entropy_only_spec_is_the_flat_codec(self):
        assert get_codec('{"entropy": "rle"}').name == "rle"
        assert not isinstance(
            get_codec('{"entropy": "rle"}'), PipelineCodec
        )

    def test_costs_sum_the_stages(self):
        flat = get_codec("huffman")
        piped = get_codec("delta|huffman")
        assert piped.costs.decompress_cycles_per_byte > \
            flat.costs.decompress_cycles_per_byte
        assert piped.costs.fixed > flat.costs.fixed

    def test_payload_header_is_self_describing(self):
        codec = get_codec("delta|stride:3|rle")
        spec, _, _ = parse_pipeline_payload(codec.compress(b"abc" * 9))
        assert spec == codec.spec

    def test_shared_entropy_delegates_training(self):
        codec = get_codec("stride:4|shared-dict")
        assert not codec.is_trained
        codec.train([b"\x01\x02\x03\x04" * 8])
        assert codec.is_trained
        assert codec.model_overhead_bytes > 0

    def test_length_preserving_flag(self):
        assert get_codec("delta|rle").length_preserving
        assert not get_codec("dict:8|rle").length_preserving


class TestRegistries:
    def test_candidate_pool_is_registered(self):
        assert set(CANDIDATE_PIPELINES) <= set(available_pipelines())

    def test_transforms_registered(self):
        assert {"identity", "delta", "mtf", "stride", "dict"} \
            <= set(available_transforms())

    def test_pipeline_search_policy_registered(self):
        assert "pipeline-search" in available_assignments()
        validate_assignment("pipeline-search:3")
        with pytest.raises(AssignmentError):
            validate_assignment("pipeline-search:999")

    def test_pipeline_search_candidate_count(self):
        assert PipelineSearchAssignment().candidate_specs \
            == tuple(CANDIDATE_PIPELINES)
        assert PipelineSearchAssignment(2).candidate_specs \
            == tuple(CANDIDATE_PIPELINES[:2])
