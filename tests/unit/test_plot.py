"""Unit tests for the ASCII plotting helpers."""

from repro.analysis.plot import plot_series, plot_timeline, sparkline
from repro.runtime import FootprintTimeline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_values(self):
        line = sparkline([5, 5, 5])
        assert len(line) == 3
        assert len(set(line)) == 1

    def test_monotone_values_monotone_glyphs(self):
        line = sparkline([0, 25, 50, 75, 100])
        ranks = [" .:-=+*#%@".index(c) for c in line]
        assert ranks == sorted(ranks)

    def test_downsamples_to_width(self):
        line = sparkline(list(range(1000)), width=40)
        assert len(line) == 40


class TestPlotTimeline:
    def _timeline(self):
        timeline = FootprintTimeline()
        timeline.record(0, 100)
        timeline.record(50, 400)
        timeline.record(80, 200)
        return timeline

    def test_empty(self):
        assert "empty" in plot_timeline(FootprintTimeline())

    def test_dimensions(self):
        chart = plot_timeline(self._timeline(), width=40, height=6)
        lines = chart.splitlines()
        # height rows + axis + x labels
        assert len(lines) == 8
        assert all("|" in line for line in lines[:6])

    def test_title_included(self):
        chart = plot_timeline(self._timeline(), title="footprint")
        assert chart.splitlines()[0] == "footprint"

    def test_peak_row_filled_where_peak_is(self):
        chart = plot_timeline(self._timeline(), width=40, height=5)
        top_row = chart.splitlines()[0]
        assert "#" in top_row

    def test_single_sample(self):
        timeline = FootprintTimeline()
        timeline.record(10, 42)
        chart = plot_timeline(timeline)
        assert "#" in chart


class TestPlotSeries:
    def test_empty(self):
        assert "empty" in plot_series([], label="s")

    def test_range_reported(self):
        text = plot_series([(1, 2.0), (2, 8.0)], label="ovh")
        assert "min=2" in text and "max=8" in text
        assert text.startswith("ovh:")
