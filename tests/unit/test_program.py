"""Unit tests for the Program container and ProgramBuilder."""

import pytest

from repro.isa import (
    INSTRUCTION_SIZE,
    Program,
    ProgramBuilder,
    ProgramError,
    assemble,
)
from repro.isa import instructions as ins


class TestProgram:
    def test_size_bytes(self, loop_program):
        assert loop_program.size_bytes == \
            len(loop_program) * INSTRUCTION_SIZE

    def test_address_index_roundtrip(self, loop_program):
        for index in range(len(loop_program)):
            address = loop_program.address_of_index(index)
            assert loop_program.index_of_address(address) == index

    def test_misaligned_address_rejected(self, loop_program):
        with pytest.raises(ProgramError, match="misaligned"):
            loop_program.index_of_address(2)

    def test_out_of_range_address_rejected(self, loop_program):
        with pytest.raises(ProgramError, match="out of range"):
            loop_program.index_of_address(loop_program.size_bytes + 4)

    def test_label_at(self, loop_program):
        assert loop_program.label_at(loop_program.labels["loop"]) == "loop"
        # instruction 1 (the second li) has no label
        assert loop_program.label_at(1) is None

    def test_link_idempotent(self, loop_program):
        before = list(loop_program.instructions)
        loop_program.link()
        assert loop_program.instructions == before

    def test_encode_requires_link(self):
        builder = ProgramBuilder("t")
        builder.label("main").emit(ins.halt())
        program = builder.build(link=False)
        with pytest.raises(ProgramError, match="linked"):
            program.encode()

    def test_disassemble_contains_labels_and_addresses(self, loop_program):
        text = loop_program.disassemble()
        assert "main:" in text
        assert "loop:" in text
        assert "0x0000" in text


class TestProgramBuilder:
    def test_builds_and_links(self):
        b = ProgramBuilder("count")
        b.label("main").emit(ins.li(1, 3))
        b.label("loop").emit(
            ins.subi(1, 1, 1), ins.bne(1, 0, "loop"), ins.halt()
        )
        program = b.build()
        assert program.is_linked
        assert program.instructions[2].imm == 4  # loop label address

    def test_empty_program_rejected(self):
        with pytest.raises(ProgramError, match="empty"):
            ProgramBuilder("empty").build()

    def test_missing_terminator_rejected(self):
        b = ProgramBuilder("x")
        b.label("main").emit(ins.nop())
        with pytest.raises(ProgramError, match="must end with"):
            b.build()

    def test_duplicate_label_rejected(self):
        b = ProgramBuilder("x")
        b.label("main")
        with pytest.raises(ProgramError, match="duplicate"):
            b.label("main")

    def test_fresh_labels_unique(self):
        b = ProgramBuilder("x")
        names = {b.fresh_label() for _ in range(100)}
        assert len(names) == 100

    def test_position_tracks_emission(self):
        b = ProgramBuilder("x")
        assert b.position == 0
        b.emit(ins.nop(), ins.nop())
        assert b.position == 2

    def test_entry_label_must_exist(self):
        b = ProgramBuilder("x", entry_label="start")
        b.label("main").emit(ins.halt())
        with pytest.raises(ProgramError, match="entry label"):
            b.build()
