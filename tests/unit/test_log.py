"""The structured key=value log helper (`repro.log`)."""

from repro.log import kv, parse_kv


class TestKvRender:
    def test_event_comes_first_and_fields_keep_order(self):
        line = kv("store.miss", store="/tmp/s", blob="ab12", n=3)
        assert line == "event=store.miss store=/tmp/s blob=ab12 n=3"

    def test_values_with_spaces_are_quoted(self):
        line = kv("e", msg="worker process died")
        assert line == 'event=e msg="worker process died"'

    def test_quotes_and_backslashes_escape(self):
        line = kv("e", path='C:\\tmp', note='say "hi"')
        assert parse_kv(line) == {
            "event": "e", "path": "C:\\tmp", "note": 'say "hi"',
        }

    def test_none_and_bools_render_as_json_literals(self):
        line = kv("e", a=None, b=True, c=False)
        assert line == "event=e a=null b=true c=false"

    def test_empty_string_value_is_quoted(self):
        assert kv("e", x="") == 'event=e x=""'

    def test_equals_sign_in_value_is_quoted(self):
        line = kv("e", expr="a=b")
        assert parse_kv(line)["expr"] == "a=b"


class TestKvParse:
    def test_roundtrip(self):
        fields = {"store": "/tmp/x y", "blob": "ab", "hint": "run it"}
        parsed = parse_kv(kv("store.corrupt_blob", **fields))
        assert parsed.pop("event") == "store.corrupt_blob"
        assert parsed == fields

    def test_tolerates_surrounding_prose(self):
        parsed = parse_kv("WARNING repro.store: event=x blob=ab tail")
        assert parsed["event"] == "x"
        assert parsed["blob"] == "ab"

    def test_no_pairs_gives_empty_dict(self):
        assert parse_kv("just some prose") == {}
