"""Unit tests for all codecs: round-trips, edge cases, registry, costs."""

import pytest

from repro.compress import (
    CodecError,
    SharedDictionaryCodec,
    SharedFieldsCodec,
    SharedHuffmanCodec,
    available_codecs,
    get_codec,
)
from repro.compress.codec import (
    CodecCosts,
    NullCodec,
    compress_for_image,
    decompress_for_image,
)

SAMPLES = [
    b"",
    b"a",
    b"ab",
    b"aaaa" * 64,
    b"abcd" * 100,
    bytes(range(256)),
    bytes(256),
    b"the quick brown fox jumps over the lazy dog " * 10,
    bytes((i * 7 + 3) & 0xFF for i in range(1000)),
]


@pytest.fixture(params=sorted(available_codecs()))
def codec(request):
    return get_codec(request.param)


class TestRoundtrip:
    @pytest.mark.parametrize("sample_index", range(len(SAMPLES)))
    def test_roundtrip(self, codec, sample_index):
        data = SAMPLES[sample_index]
        assert codec.decompress(codec.compress(data)) == data

    def test_image_format_roundtrip(self, codec):
        data = b"\x01\x12\x00\x05" * 40
        payload = compress_for_image(codec, data)
        assert decompress_for_image(codec, payload, len(data)) == data

    def test_ratio_bounded_for_incompressible(self, codec):
        # raw fallback caps blow-up at a small constant header
        data = bytes((i * 101 + 17) & 0xFF for i in range(400))
        assert len(codec.compress(data)) <= len(data) + 8


class TestRegistry:
    def test_known_codecs_present(self):
        names = available_codecs()
        for expected in (
            "null", "rle", "mtf-rle", "huffman", "lzw", "lz77",
            "dictionary", "shared-dict", "shared-huffman",
            "shared-fields",
        ):
            assert expected in names

    def test_unknown_codec_raises_with_choices(self):
        with pytest.raises(KeyError, match="available"):
            get_codec("bogus")

    def test_instances_are_fresh(self):
        a = get_codec("shared-dict")
        b = get_codec("shared-dict")
        assert a is not b


class TestNullCodec:
    def test_identity(self):
        codec = NullCodec()
        assert codec.compress(b"xyz") == b"xyz"
        assert codec.ratio(b"xyz") == 1.0

    def test_zero_latency(self):
        codec = NullCodec()
        assert codec.costs.decompress_latency(1000) == 0


class TestCosts:
    def test_latency_scales_with_size(self, codec):
        small = codec.costs.decompress_latency(10)
        large = codec.costs.decompress_latency(1000)
        assert large >= small

    def test_fixed_cost_floor(self):
        costs = CodecCosts(
            decompress_cycles_per_byte=2.0,
            compress_cycles_per_byte=4.0,
            fixed=33,
        )
        assert costs.decompress_latency(0) == 33
        assert costs.decompress_latency(10) == 53


class TestCorruptionHandling:
    @pytest.mark.parametrize(
        "name", ["huffman", "lzw", "lz77", "rle", "dictionary"]
    )
    def test_bad_tag_rejected(self, name):
        codec = get_codec(name)
        with pytest.raises(CodecError):
            codec.decompress(bytes((0x7F,)) + b"\x00" * 8)

    @pytest.mark.parametrize("name", ["huffman", "lzw", "lz77"])
    def test_truncated_stream_rejected(self, name):
        codec = get_codec(name)
        payload = codec.compress(b"hello world, hello world, hello")
        if payload[0] == 0:  # raw fallback: truncation detected too
            with pytest.raises(CodecError):
                codec.decompress(payload[:4])
        else:
            with pytest.raises(CodecError):
                codec.decompress(payload[: len(payload) // 2])

    def test_empty_payload_rejected(self):
        for name in ("huffman", "lzw"):
            with pytest.raises(CodecError):
                get_codec(name).decompress(b"")


class TestSharedModelCodecs:
    def test_training_improves_cross_block_compression(self):
        blocks = [
            bytes((0x01, 0x12, 0x00, 0x05)) * 10,
            bytes((0x01, 0x12, 0x00, 0x05)) * 8,
        ]
        codec = SharedDictionaryCodec()
        codec.train(blocks)
        for block in blocks:
            assert len(codec.compress_block(block)) < len(block)

    def test_model_overhead_reported(self):
        codec = SharedDictionaryCodec()
        codec.train([b"\x01\x02\x03\x04" * 10])
        assert codec.model_overhead_bytes > 0

    def test_untrained_auto_trains_on_first_input(self):
        codec = SharedHuffmanCodec()
        data = b"hello hello hello"
        assert codec.decompress(codec.compress(data)) == data
        assert codec.is_trained

    def test_unseen_bytes_use_escape(self):
        codec = SharedFieldsCodec()
        codec.train([b"\x00\x01\x02\x03" * 20])
        exotic = bytes((0xFE, 0xFD, 0xFC, 0xFB)) * 3
        payload = codec.compress_block(exotic)
        assert codec.decompress_block(payload, len(exotic)) == exotic

    def test_sized_payload_smaller_than_self_contained(self):
        codec = SharedDictionaryCodec()
        data = b"\x01\x12\x00\x05" * 10
        codec.train([data])
        assert len(codec.compress_block(data)) < len(codec.compress(data))

    def test_decompress_block_unknown_tag(self):
        codec = SharedDictionaryCodec()
        codec.train([b"\x00" * 8])
        with pytest.raises(CodecError, match="tag"):
            codec.decompress_block(b"\x09\x00", 4)

    def test_oversized_input_rejected(self):
        codec = SharedHuffmanCodec()
        with pytest.raises(CodecError, match="64 KiB"):
            codec.compress(bytes(0x10001))
