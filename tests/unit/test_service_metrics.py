"""Unit tests for :mod:`repro.service.metrics`.

Quantile estimates are pinned against hand-computed linear
interpolation over the fixed bucket bounds, and a thread hammer proves
:meth:`ServiceMetrics.snapshot` never observes torn bucket counts.
"""

import threading

import pytest

from repro.service.metrics import (
    BUCKET_BOUNDS_MS,
    LatencyHistogram,
    ServiceMetrics,
)


def _hist(*observations):
    hist = LatencyHistogram()
    for ms in observations:
        hist.observe(ms)
    return hist


class TestQuantile:
    def test_empty_histogram_is_zero(self):
        assert LatencyHistogram().quantile(0.5) == 0.0
        assert LatencyHistogram().quantile(0.99) == 0.0

    def test_out_of_range_q_raises(self):
        hist = _hist(1.0)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            hist.quantile(1.5)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            hist.quantile(-0.1)

    def test_interpolation_pins(self):
        # One observation per bucket: <=1, <=2, <=5, <=10.
        hist = _hist(0.5, 1.5, 3.0, 8.0)
        # rank = 0.5 * 4 = 2.0 -> top of the <=2 bucket.
        assert hist.quantile(0.50) == 2.0
        # rank = 3.8 -> 0.8 of the way through the (5, 10] bucket.
        assert hist.quantile(0.95) == 9.0
        # rank = 3.96 -> 0.96 of the way through the (5, 10] bucket.
        assert hist.quantile(0.99) == 9.8
        assert hist.quantile(0.0) == 0.0
        assert hist.quantile(1.0) == 10.0

    def test_single_observation(self):
        hist = _hist(0.25)
        # Bucket semantics: 0.5 of the way through the (0, 1] bucket.
        assert hist.quantile(0.5) == 0.5

    def test_overflow_bucket_uses_observed_max(self):
        hist = _hist(3000.0, 3000.0)
        top = BUCKET_BOUNDS_MS[-1]
        # Half-way through (2500, max_ms=3000].
        assert hist.quantile(0.5) == top + (3000.0 - top) / 2
        # Never exceeds a latency actually seen.
        assert hist.quantile(1.0) == 3000.0

    def test_overflow_fraction_is_clamped(self):
        hist = _hist(10000.0)
        assert hist.quantile(1.0) == 10000.0

    def test_to_dict_carries_quantiles(self):
        payload = _hist(0.5, 1.5, 3.0, 8.0).to_dict()
        assert payload["p50_ms"] == 2.0
        assert payload["p95_ms"] == 9.0
        assert payload["p99_ms"] == 9.8
        assert payload["count"] == 4
        assert sum(payload["buckets_ms"].values()) == 4

    def test_quantiles_are_monotone_in_q(self):
        hist = _hist(*[float(x) for x in range(1, 200, 7)])
        quantiles = [hist.quantile(q / 100) for q in range(0, 101, 5)]
        assert quantiles == sorted(quantiles)


class TestServiceMetricsThreadSafety:
    def test_snapshot_never_sees_torn_buckets(self):
        """Concurrent observers + snapshotters: bucket sums stay exact.

        Without the lock in ``snapshot`` a reader could catch
        ``observe`` between ``count += 1`` and the bucket increment and
        report ``sum(buckets) != count``.
        """
        metrics = ServiceMetrics()
        labels = ("POST /jobs", "GET /jobs/{id}", "GET /metrics")
        per_thread = 400
        writer_count = 6
        stop = threading.Event()
        torn = []

        def writer(seed):
            for i in range(per_thread):
                label = labels[(seed + i) % len(labels)]
                metrics.observe(label, float((seed * i) % 97), 200)

        def reader():
            while not stop.is_set():
                snap = metrics.snapshot()
                for label, hist in snap["requests"].items():
                    total = sum(hist["buckets_ms"].values())
                    if total != hist["count"]:
                        torn.append((label, total, hist["count"]))
                responses = sum(snap["responses"].values())
                requests = sum(
                    h["count"] for h in snap["requests"].values()
                )
                if responses != requests:
                    torn.append(("responses", responses, requests))

        writers = [
            threading.Thread(target=writer, args=(seed,))
            for seed in range(writer_count)
        ]
        readers = [threading.Thread(target=reader) for _ in range(2)]
        for thread in readers + writers:
            thread.start()
        for thread in writers:
            thread.join()
        stop.set()
        for thread in readers:
            thread.join()

        assert torn == []
        final = metrics.snapshot()
        observed = sum(h["count"] for h in final["requests"].values())
        assert observed == writer_count * per_thread
        assert final["responses"] == {
            "200": writer_count * per_thread
        }
