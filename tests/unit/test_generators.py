"""Unit tests for the synthetic program generator."""

import pytest

from repro.cfg import build_cfg, natural_loops
from repro.core import SimulationConfig, simulate
from repro.workloads import (
    GeneratorConfig,
    generate_program,
    generate_sized_program,
)


class TestDeterminism:
    def test_same_seed_same_program(self):
        a = generate_program(GeneratorConfig(seed=5))
        b = generate_program(GeneratorConfig(seed=5))
        assert a.encode() == b.encode()

    def test_different_seed_different_program(self):
        a = generate_program(GeneratorConfig(seed=5))
        b = generate_program(GeneratorConfig(seed=6))
        assert a.encode() != b.encode()


class TestStructure:
    def test_generated_cfg_is_valid(self):
        for seed in range(5):
            cfg = build_cfg(
                generate_program(GeneratorConfig(seed=seed, segments=10))
            )
            assert cfg.validate() == []

    def test_loops_generated(self):
        cfg = build_cfg(
            generate_program(
                GeneratorConfig(seed=3, segments=20, loop_prob=0.7,
                                branch_prob=0.2, call_prob=0.05)
            )
        )
        assert natural_loops(cfg)

    def test_functions_reachable_via_calls(self):
        config = GeneratorConfig(seed=11, segments=30, call_prob=0.5,
                                 loop_prob=0.2, branch_prob=0.1)
        cfg = build_cfg(generate_program(config))
        assert len(cfg.functions) >= 1

    def test_sized_generation_meets_target(self):
        program = generate_sized_program(seed=2, target_bytes=4000)
        assert program.size_bytes >= 4000

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            GeneratorConfig(segments=0)
        with pytest.raises(ValueError):
            GeneratorConfig(loop_prob=0.9, branch_prob=0.9)


class TestTermination:
    @pytest.mark.parametrize("seed", range(4))
    def test_generated_programs_halt(self, seed):
        program = generate_program(
            GeneratorConfig(seed=seed, segments=12)
        )
        result = simulate(
            program,
            SimulationConfig(decompression="none", trace_events=False,
                             record_trace=False),
        )
        assert result.total_cycles > 0

    def test_accumulator_is_live(self):
        program = generate_program(GeneratorConfig(seed=9))
        result = simulate(
            program,
            SimulationConfig(decompression="none", trace_events=False,
                             record_trace=False),
        )
        assert result.registers[14] > 0
