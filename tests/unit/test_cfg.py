"""Unit tests for basic blocks, CFG construction, and graph queries."""

import pytest

from repro.cfg import BasicBlock, CFGError, Edge, build_cfg
from repro.cfg.graph import ControlFlowGraph
from repro.isa import Opcode, assemble
from repro.isa import instructions as ins


class TestBasicBlock:
    def test_empty_block_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            BasicBlock(block_id=0, start_index=0, instructions=[])

    def test_geometry(self):
        block = BasicBlock(0, 3, [ins.nop(), ins.halt()])
        assert block.start_address == 12
        assert block.end_index == 5
        assert block.size_bytes == 8
        assert len(block) == 2

    def test_terminator_classification(self):
        halt_block = BasicBlock(0, 0, [ins.halt()])
        assert halt_block.is_exit
        assert not halt_block.falls_through
        jmp_block = BasicBlock(1, 0, [ins.jmp("x").with_imm(0)])
        assert not jmp_block.falls_through
        cond_block = BasicBlock(2, 0, [ins.beq(1, 2, "x").with_imm(0)])
        assert cond_block.falls_through

    def test_cycle_cost_sums_instructions(self):
        block = BasicBlock(0, 0, [ins.mul(1, 2, 3), ins.halt()])
        assert block.cycle_cost == ins.mul(1, 2, 3).cycles + 1

    def test_name_prefers_label(self):
        assert BasicBlock(4, 0, [ins.halt()], label="exit").name == "exit"
        assert BasicBlock(4, 0, [ins.halt()]).name == "B4"


class TestBuilder:
    def test_loop_program_blocks(self, loop_cfg):
        # main(li,li) / loop body / call / halt / fn
        assert len(loop_cfg.blocks) == 5
        names = [block.name for block in loop_cfg.blocks]
        assert "main" in names and "loop" in names and "fn" in names

    def test_entry_block(self, loop_cfg):
        assert loop_cfg.entry.label == "main"

    def test_conditional_block_has_two_successors(self, loop_cfg):
        loop_block = next(
            b for b in loop_cfg.blocks if b.label == "loop"
        )
        succs = loop_cfg.successors(loop_block.block_id)
        assert loop_block.block_id in succs  # self loop
        assert len(succs) == 2

    def test_call_edge_and_return_edge(self, loop_cfg):
        call_block = next(
            b for b in loop_cfg.blocks
            if b.terminator.opcode is Opcode.CALL
        )
        fn_block = next(b for b in loop_cfg.blocks if b.label == "fn")
        assert fn_block.block_id in loop_cfg.successors(
            call_block.block_id
        )
        # fn returns to the block after the call
        return_point = loop_cfg.block_starting_at(call_block.end_index)
        assert return_point.block_id in loop_cfg.successors(
            fn_block.block_id
        )

    def test_unlinked_program_rejected(self):
        from repro.isa import ProgramBuilder

        b = ProgramBuilder("x")
        b.label("main").emit(ins.halt())
        program = b.build(link=False)
        with pytest.raises(Exception, match="linked"):
            build_cfg(program)

    def test_block_at_index_covers_whole_program(self, loop_cfg):
        for index in range(len(loop_cfg.program.instructions)):
            block = loop_cfg.block_at_index(index)
            assert block.start_index <= index < block.end_index

    def test_block_at_address(self, loop_cfg):
        entry = loop_cfg.block_at_address(0)
        assert entry.block_id == loop_cfg.entry_id

    def test_validate_clean_programs(self, loop_cfg, figure1_cfg):
        assert loop_cfg.validate() == []
        assert figure1_cfg.validate() == []

    def test_function_partition(self, loop_cfg):
        fn_block = next(b for b in loop_cfg.blocks if b.label == "fn")
        assert loop_cfg.function_of[fn_block.block_id] == \
            fn_block.block_id
        # main body blocks all map to the entry function
        assert loop_cfg.function_of[loop_cfg.entry_id] == loop_cfg.entry_id
        # every block belongs to exactly one function
        all_blocks = set()
        for body in loop_cfg.functions.values():
            assert not (all_blocks & body)
            all_blocks |= body
        assert all_blocks == {b.block_id for b in loop_cfg.blocks}


class TestGraphQueries:
    def test_dense_ids_required(self):
        blocks = [BasicBlock(1, 0, [ins.halt()])]
        with pytest.raises(CFGError, match="dense"):
            ControlFlowGraph(blocks, [])

    def test_duplicate_edges_collapsed(self):
        blocks = [
            BasicBlock(0, 0, [ins.jmp("x").with_imm(4)]),
            BasicBlock(1, 1, [ins.halt()]),
        ]
        cfg = ControlFlowGraph(
            blocks, [Edge(0, 1), Edge(0, 1, "taken")]
        )
        assert cfg.num_edges == 1

    def test_edge_to_unknown_block_rejected(self):
        blocks = [BasicBlock(0, 0, [ins.halt()])]
        with pytest.raises(CFGError, match="unknown block"):
            ControlFlowGraph(blocks, [Edge(0, 5)])

    def test_blocks_within_distance(self, figure1_cfg):
        distances = figure1_cfg.blocks_within(figure1_cfg.entry_id, 1)
        assert distances[figure1_cfg.entry_id] == 0
        assert all(d <= 1 for d in distances.values())

    def test_blocks_within_k0_is_self(self, figure1_cfg):
        assert figure1_cfg.blocks_within(0, 0) == {0: 0}

    def test_negative_k_rejected(self, figure1_cfg):
        with pytest.raises(CFGError, match="non-negative"):
            figure1_cfg.blocks_within(0, -1)

    def test_forward_neighbourhood_excludes_self_unless_cycle(
        self, loop_cfg
    ):
        loop_block = next(
            b for b in loop_cfg.blocks if b.label == "loop"
        )
        hood = loop_cfg.forward_neighbourhood(loop_block.block_id, 1)
        # self-loop: the block re-reaches itself within 1 edge
        assert loop_block.block_id in hood

    def test_forward_neighbourhood_no_cycle(self, loop_cfg):
        # the halt block has no successors
        exit_id = loop_cfg.exit_ids[0]
        assert loop_cfg.forward_neighbourhood(exit_id, 3) == set()

    def test_backward_neighbourhood(self, loop_cfg):
        exit_id = loop_cfg.exit_ids[0]
        back = loop_cfg.backward_neighbourhood(exit_id, 1)
        assert back  # the fn block returns into it
        assert exit_id not in back

    def test_edge_distance(self, loop_cfg):
        assert loop_cfg.edge_distance(
            loop_cfg.entry_id, loop_cfg.entry_id
        ) == 0
        exit_id = loop_cfg.exit_ids[0]
        distance = loop_cfg.edge_distance(loop_cfg.entry_id, exit_id)
        assert distance is not None and distance >= 1
        # nothing is reachable from the exit
        assert loop_cfg.edge_distance(exit_id, loop_cfg.entry_id) is None

    def test_reverse_postorder_starts_at_entry(self, figure1_cfg):
        order = figure1_cfg.reverse_postorder()
        assert order[0] == figure1_cfg.entry_id
        assert len(order) == len(figure1_cfg.reachable_from_entry())

    def test_total_size(self, loop_cfg):
        assert loop_cfg.total_size_bytes() == \
            loop_cfg.program.size_bytes

    def test_render_mentions_all_blocks(self, loop_cfg):
        text = loop_cfg.render()
        for block in loop_cfg.blocks:
            assert block.name in text
