"""Unit tests for :mod:`repro.faults` — plans, retry policies, hooks.

The chaos *scenarios* (whole sweeps surviving injected faults) live in
``tests/chaos/``; this file pins the building blocks: plan parsing and
env round-trips, rule matching/budget semantics, deterministic backoff,
the per-cell deadline, and the retry pass on real (tiny) cells.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro import api
from repro.faults import (
    FAULTS_ENV,
    CellTimeoutError,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    RetryPolicy,
    TransientFault,
    cell_deadline,
    classify_fault,
    corrupt_bytes,
    current_plan,
    install_plan,
    maybe_fire,
    plan_from_env,
    truncate_bytes,
)


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            rules=(
                FaultRule(kind="transient", site="cell", match="fib",
                          times=2),
                FaultRule(kind="corrupt", site="cas.read", rate=0.5,
                          times=None),
            ),
            seed=7,
        )
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan

    def test_env_inline_json_and_file(self, tmp_path, monkeypatch):
        plan = FaultPlan(rules=(FaultRule(kind="hang", seconds=1.5),))
        monkeypatch.setenv(FAULTS_ENV, plan.to_json())
        assert plan_from_env() == plan
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        monkeypatch.setenv(FAULTS_ENV, str(path))
        assert plan_from_env() == plan

    def test_env_unset_means_no_plan(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert plan_from_env() is None
        assert current_plan() is None

    def test_malformed_env_is_loud(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "{not json")
        with pytest.raises(FaultPlanError):
            plan_from_env()

    def test_invalid_rules_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultRule(kind="meteor")
        with pytest.raises(FaultPlanError):
            FaultRule(kind="transient", site="gpu")
        with pytest.raises(FaultPlanError):
            FaultRule(kind="transient", times=-1)
        with pytest.raises(FaultPlanError):
            FaultRule(kind="transient", rate=1.5)

    def test_fraction_is_deterministic(self):
        plan = FaultPlan(rules=(FaultRule(kind="corrupt", rate=0.5),),
                         seed=3)
        one = plan.fraction(0, "cas.read", "abc", 0)
        two = plan.fraction(0, "cas.read", "abc", 0)
        assert one == two
        assert 0.0 <= one < 1.0
        assert one != plan.fraction(0, "cas.read", "abc", 1)


class TestMaybeFire:
    def test_no_plan_is_a_noop(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert maybe_fire("cell", "fib:ondemand") is None

    def test_times_budget(self):
        plan = FaultPlan(rules=(
            FaultRule(kind="transient", site="cell", times=2),
        ))
        with install_plan(plan):
            with pytest.raises(TransientFault):
                maybe_fire("cell", "a")
            with pytest.raises(TransientFault):
                maybe_fire("cell", "b")
            assert maybe_fire("cell", "c") is None  # budget spent

    def test_match_filters_by_key_substring(self):
        plan = FaultPlan(rules=(
            FaultRule(kind="transient", site="cell", match="fib",
                      times=None),
        ))
        with install_plan(plan):
            assert maybe_fire("cell", "gcd:ondemand") is None
            assert maybe_fire("cas.read", "fib") is None  # wrong site
            with pytest.raises(TransientFault):
                maybe_fire("cell", "fib:ondemand")

    def test_crash_rule_is_inert_in_the_main_process(self):
        # A crash firing here would os._exit the pytest process; the
        # rule must neither fire nor consume its budget outside a
        # worker subprocess.
        plan = FaultPlan(rules=(FaultRule(kind="crash", times=1),))
        with install_plan(plan):
            assert maybe_fire("cell", "fib:ondemand") is None
            assert maybe_fire("cell", "fib:ondemand") is None

    def test_install_plan_exports_and_restores_env(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        plan = FaultPlan(rules=(FaultRule(kind="hang"),))
        with install_plan(plan):
            assert json.loads(os.environ[FAULTS_ENV]) == \
                json.loads(plan.to_json())
            assert current_plan() == plan
        assert FAULTS_ENV not in os.environ
        assert current_plan() is None


class TestByteMutations:
    def test_corrupt_changes_and_preserves_length(self):
        data = b"hello world"
        assert corrupt_bytes(data) != data
        assert len(corrupt_bytes(data)) == len(data)
        assert corrupt_bytes(b"") == b"\xff"

    def test_truncate_halves(self):
        assert truncate_bytes(b"abcdef") == b"abc"
        assert truncate_bytes(b"") == b""


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)

    def test_delay_schedule_is_deterministic_and_bounded(self):
        policy = RetryPolicy(attempts=5, backoff_base=0.1,
                             backoff_factor=2.0, backoff_max=0.3,
                             jitter=0.25, seed=1)
        assert policy.delay(1, "k") == 0.0
        delays = [policy.delay(n, "k") for n in (2, 3, 4, 5)]
        assert delays == [policy.delay(n, "k") for n in (2, 3, 4, 5)]
        # Exponential up to the cap, jitter only ever adds (<= 25%).
        assert 0.1 <= delays[0] <= 0.1 * 1.25
        assert 0.2 <= delays[1] <= 0.2 * 1.25
        assert delays[2] <= 0.3 * 1.25  # capped
        assert policy.delay(2, "k") != policy.delay(2, "other")


class TestCellDeadline:
    def test_deadline_interrupts_a_sleep(self):
        started = time.perf_counter()
        with pytest.raises(CellTimeoutError):
            with cell_deadline(0.1):
                time.sleep(5.0)
        assert time.perf_counter() - started < 2.0

    def test_none_and_nested_are_noops(self):
        with cell_deadline(None):
            pass
        with cell_deadline(10.0):
            with cell_deadline(0.001):  # inner must not arm
                time.sleep(0.05)


class TestClassifyFault:
    @pytest.mark.parametrize("message,expected", [
        ("TransientFault: injected", "transient"),
        ("CellTimeoutError: 0.5s deadline", "timeout"),
        ("WorkerCrashError: died", "crash"),
        ("BrokenProcessPool: pool died", "crash"),
        ("ZeroDivisionError: division by zero", "error"),
        ("", None),
        (None, None),
    ])
    def test_classes(self, message, expected):
        assert classify_fault(message) == expected


class TestRetryThroughTheApi:
    SPEC_KWARGS = dict(
        workloads=["fib"],
        base={"codec": "shared-dict", "decompression": "ondemand"},
        axes=api.grid(k_compress=[1, 2]),
    )

    def test_transient_fault_becomes_an_error_row_without_retry(self):
        plan = FaultPlan(rules=(
            FaultRule(kind="transient", site="cell", match="kc=1",
                      times=1),
        ))
        with install_plan(plan):
            rs = api.run_experiment(api.ExperimentSpec(**self.SPEC_KWARGS))
        assert len(rs.errors()) == 1
        assert "TransientFault" in rs.errors()[0].error

    def test_retry_recovers_and_stays_byte_identical(self):
        spec = api.ExperimentSpec(**self.SPEC_KWARGS)
        baseline = api.run_experiment(spec)
        plan = FaultPlan(rules=(
            FaultRule(kind="transient", site="cell", match="fib",
                      times=2),
        ))
        with install_plan(plan):
            recovered = api.run_experiment(
                spec,
                retry=RetryPolicy(attempts=3, backoff_base=0.0,
                                  jitter=0.0),
            )
        assert recovered.errors() == []
        assert recovered.canonical_json() == baseline.canonical_json()

    def test_exhausted_cell_carries_attempt_provenance(self):
        plan = FaultPlan(rules=(
            FaultRule(kind="transient", site="cell", match="fib",
                      times=None),
        ))
        with install_plan(plan):
            rs = api.run_experiment(
                api.ExperimentSpec(**self.SPEC_KWARGS),
                retry=RetryPolicy(attempts=2, backoff_base=0.0,
                                  jitter=0.0),
            )
        assert len(rs.errors()) == 2
        cells = rs.to_dict()["cells"]
        for cell in cells:
            assert "error" in cell
            attempts = cell["attempts"]
            assert [a["attempt"] for a in attempts] == [1, 2]
            assert all(a["fault"] == "transient" for a in attempts)
            assert attempts[0]["duration_ms"] is None
            assert attempts[1]["duration_ms"] >= 0

    def test_recovered_cell_serialises_without_attempts(self):
        plan = FaultPlan(rules=(
            FaultRule(kind="transient", site="cell", match="fib",
                      times=1),
        ))
        with install_plan(plan):
            rs = api.run_experiment(
                api.ExperimentSpec(**self.SPEC_KWARGS),
                retry=RetryPolicy(attempts=2, backoff_base=0.0,
                                  jitter=0.0),
            )
        assert rs.errors() == []
        assert "attempts" not in json.dumps(rs.to_dict())

    def test_hang_plus_timeout_recovers(self):
        spec = api.ExperimentSpec(**self.SPEC_KWARGS)
        baseline = api.run_experiment(spec)
        plan = FaultPlan(rules=(
            FaultRule(kind="hang", site="cell", match="fib",
                      seconds=5.0, times=1),
        ))
        with install_plan(plan):
            rs = api.run_experiment(
                spec,
                retry=RetryPolicy(attempts=2, timeout=0.3,
                                  backoff_base=0.0, jitter=0.0),
            )
        assert rs.canonical_json() == baseline.canonical_json()
