"""Unit tests for the persistent experiment store (repro.store)."""

import json
import os
import time

import pytest

from repro.analysis.sweep import run_one
from repro.cfg import build_cfg
from repro.core import SimulationConfig
from repro.log import parse_kv
from repro.memory.image import ArtifactCache, compression_artifacts
from repro.registry import catalog_signature
from repro.store import (
    ExperimentStore,
    StoreError,
    canonical_dumps,
    cell_fingerprint,
    code_version,
    config_signature,
    workload_digest,
)
from repro.store.records import (
    is_cacheable,
    record_to_run,
    run_to_record,
)
from repro.workloads import get_workload

_FAST = dict(trace_events=False, record_trace=False)


def _config(**overrides):
    fields = dict(codec="shared-dict", decompression="ondemand",
                  k_compress=2, **_FAST)
    fields.update(overrides)
    return SimulationConfig(**fields)


class TestFingerprint:
    def test_stable_across_calls(self):
        workload = get_workload("fib")
        config = _config()
        assert cell_fingerprint(workload, config) == \
            cell_fingerprint(workload, config)

    def test_equal_configs_agree(self):
        workload = get_workload("fib")
        assert cell_fingerprint(workload, _config()) == \
            cell_fingerprint(workload, _config())

    @pytest.mark.parametrize("change", [
        dict(k_compress=4),
        dict(codec="shared-huffman"),
        dict(decompression="pre-all"),
        dict(granularity="function"),
        dict(memory_budget=4096),
    ])
    def test_config_fields_participate(self, change):
        workload = get_workload("fib")
        assert cell_fingerprint(workload, _config()) != \
            cell_fingerprint(workload, _config(**change))

    def test_engine_fast_and_max_blocks_participate(self):
        workload = get_workload("fib")
        config = _config()
        base = cell_fingerprint(workload, config, engine="machine")
        assert base != cell_fingerprint(workload, config,
                                        engine="trace")
        assert base != cell_fingerprint(workload, config, fast=False)
        assert base != cell_fingerprint(workload, config,
                                        max_blocks=100)

    def test_workloads_differ(self):
        config = _config()
        assert cell_fingerprint(get_workload("fib"), config) != \
            cell_fingerprint(get_workload("gcd"), config)

    def test_salt_env_invalidates(self, monkeypatch):
        workload = get_workload("fib")
        config = _config()
        before = cell_fingerprint(workload, config)
        monkeypatch.setenv("REPRO_STORE_SALT", "bumped")
        assert cell_fingerprint(workload, config) != before

    def test_workload_digest_is_content_addressed(self):
        digest = workload_digest(get_workload("fib"))
        assert digest.startswith("fib:")
        assert digest == workload_digest(get_workload("fib"))

    def test_profile_hashes_by_content(self):
        from repro.cfg.profile import EdgeProfile

        profile = EdgeProfile()
        profile.record_edge(0, 1)
        base = _config(decompression="pre-single",
                       predictor="static-profile", profile=profile)
        sig = config_signature(base)
        assert isinstance(sig["profile"], str)
        profile2 = EdgeProfile()
        profile2.record_edge(0, 2)
        other = _config(decompression="pre-single",
                        predictor="static-profile", profile=profile2)
        assert config_signature(other)["profile"] != sig["profile"]

    def test_code_version_is_cached_and_hexadecimal(self):
        version = code_version()
        assert version == code_version()
        int(version, 16)

    def test_catalog_signature_sorted(self):
        import repro.api  # noqa: F401  (registers engines/executors)

        catalog = catalog_signature()
        assert list(catalog) == sorted(catalog)
        assert "executors" in catalog
        assert "caching" in catalog["executors"]

    def test_canonical_dumps_is_compact_and_sorted(self):
        text = canonical_dumps({"b": 1, "a": [1, 2]})
        assert text == '{"a":[1,2],"b":1}'


class TestCAS:
    def test_cell_roundtrip(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        record = {"schema": "x", "value": [1, 2, 3]}
        store.put_cell("ab" * 32, record)
        assert store.get_cell("ab" * 32) == record
        assert store.has_cell("ab" * 32)
        assert store.get_cell("cd" * 32) is None

    def test_identical_records_share_one_blob(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        store.put_cell("aa" * 32, {"v": 1})
        store.put_cell("bb" * 32, {"v": 1})
        assert store.stats()["cells"] == 2
        assert store.stats()["blobs"] == 1

    def test_corrupt_ref_and_blob_read_as_miss(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        digest = store.put_cell("aa" * 32, {"v": 1})
        ref = store._fan_path("cells", "aa" * 32)
        with open(ref, "w") as handle:
            handle.write("not-a-digest\n")
        assert store.get_cell("aa" * 32) is None
        # Restore the ref but corrupt the blob contents.
        with open(ref, "w") as handle:
            handle.write(digest + "\n")
        with open(store._fan_path("objects", digest), "wb") as handle:
            handle.write(b"garbage")
        assert store.get_cell("aa" * 32) is None

    def test_format_marker_checked(self, tmp_path):
        root = tmp_path / "store"
        ExperimentStore(root)
        marker = root / "format.json"
        marker.write_text('{"format": 999}')
        with pytest.raises(StoreError, match="format"):
            ExperimentStore(root)

    def test_inspection_mode_requires_marker(self, tmp_path):
        with pytest.raises(StoreError, match="no experiment store"):
            ExperimentStore(tmp_path / "missing", create=False)
        unmarked = tmp_path / "unmarked"
        unmarked.mkdir()
        with pytest.raises(StoreError, match="no experiment store"):
            ExperimentStore(unmarked, create=False)
        # A real store opens fine in inspection mode.
        ExperimentStore(tmp_path / "real")
        assert ExperimentStore(tmp_path / "real",
                               create=False).stats()["cells"] == 0

    def test_usage_counters_accumulate(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        store.add_usage(hits=2, misses=1, puts=1)
        store.add_usage(hits=3)
        stats = store.stats()
        assert stats["hits"] == 5
        assert stats["misses"] == 1
        assert stats["puts"] == 1

    def test_gc_removes_orphans_only(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        store.put_cell("aa" * 32, {"v": 1})
        orphan = store.put_blob(b"orphan bytes")
        report = store.gc()
        assert report["removed_blobs"] == 1
        assert store.get_blob(orphan) is None
        assert store.get_cell("aa" * 32) == {"v": 1}

    def test_gc_spares_fresh_tmp_files(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        fan = os.path.join(store.root, "objects", "ab")
        os.makedirs(fan)
        in_flight = os.path.join(fan, "abcd.tmp")
        with open(in_flight, "wb") as handle:
            handle.write(b"writer still at work")
        assert store.gc()["removed_blobs"] == 0
        assert os.path.exists(in_flight)  # a concurrent writer's file
        # Stale temp files (older than the grace window) do go.
        old = time.time() - store.GC_TMP_GRACE_SECONDS - 10
        os.utime(in_flight, (old, old))
        assert store.gc()["removed_blobs"] == 1
        assert not os.path.exists(in_flight)

    def test_clear_empties_but_keeps_marker(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        store.put_cell("aa" * 32, {"v": 1})
        store.clear()
        assert store.stats()["cells"] == 0
        assert store.stats()["blobs"] == 0
        assert os.path.exists(store._marker_path())

    def test_clear_refuses_unmarked_directory(self, tmp_path):
        victim = tmp_path / "precious"
        victim.mkdir()
        (victim / "data.txt").write_text("do not delete")
        store = ExperimentStore.__new__(ExperimentStore)
        store.root = str(victim)
        with pytest.raises(StoreError, match="refusing"):
            store.clear()
        assert (victim / "data.txt").read_text() == "do not delete"

    def test_artifact_bundle_roundtrip(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        blocks = [b"\x01\x02\x03\x04" * 4, b"\xff" * 8]
        payloads = [b"p0", b"p1"]
        store.put_artifact_bundle("shared-dict", blocks, payloads)
        assert store.get_artifact_bundle("shared-dict", blocks) == \
            payloads
        # Different codec or block bytes: a miss.
        assert store.get_artifact_bundle("shared-huffman", blocks) \
            is None
        assert store.get_artifact_bundle(
            "shared-dict", [b"\x00" * 4, b"\xff" * 8]
        ) is None


class TestRecords:
    def test_roundtrip_preserves_metrics_exactly(self):
        from repro.api.results import run_metrics

        workload = get_workload("gcd")
        run = run_one(workload, _config())
        fingerprint = cell_fingerprint(workload, run.config)
        record = run_to_record(run, fingerprint)
        # The record must survive a JSON round-trip (what the CAS does).
        record = json.loads(canonical_dumps(record))
        rebuilt = record_to_run(record, run.config)
        assert rebuilt.workload == run.workload
        assert rebuilt.validation == run.validation
        assert run_metrics(rebuilt) == run_metrics(run)
        assert rebuilt.result.footprint.samples == \
            run.result.footprint.samples
        assert rebuilt.result.registers == run.result.registers

    def test_malformed_record_raises_store_error(self):
        with pytest.raises(StoreError):
            record_to_run({"schema": "nope"}, _config())

    def test_error_runs_are_not_cacheable(self):
        from repro.analysis.sweep import _failed_run

        run = _failed_run(get_workload("fib"), _config(),
                          RuntimeError("boom"))
        assert not is_cacheable(run)

    def test_normal_runs_are_cacheable(self):
        run = run_one(get_workload("fib"), _config())
        assert is_cacheable(run)


class TestArtifactCacheLRU:
    def test_capacity_bounds_entries(self):
        cache = ArtifactCache(capacity=2)
        graphs = [build_cfg(get_workload(name).program)
                  for name in ("fib", "gcd", "crc32")]
        for graph in graphs:
            cache.put(graph, "shared-dict", object())
        assert len(cache) == 2
        assert cache.get(graphs[0], "shared-dict") is None  # evicted
        assert cache.get(graphs[2], "shared-dict") is not None

    def test_get_refreshes_recency(self):
        cache = ArtifactCache(capacity=2)
        graphs = [build_cfg(get_workload(name).program)
                  for name in ("fib", "gcd", "crc32")]
        cache.put(graphs[0], "shared-dict", "a0")
        cache.put(graphs[1], "shared-dict", "a1")
        cache.get(graphs[0], "shared-dict")  # 0 is now most recent
        cache.put(graphs[2], "shared-dict", "a2")
        assert cache.get(graphs[0], "shared-dict") == "a0"
        assert cache.get(graphs[1], "shared-dict") is None

    def test_clear_and_set_capacity(self):
        cache = ArtifactCache(capacity=4)
        graphs = [build_cfg(get_workload(name).program)
                  for name in ("fib", "gcd", "crc32")]
        for graph in graphs:
            cache.put(graph, "shared-dict", object())
        cache.set_capacity(1)
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        with pytest.raises(ValueError):
            cache.set_capacity(0)

    def test_dead_cfg_entry_is_dropped(self):
        import gc

        cache = ArtifactCache(capacity=4)
        graph = build_cfg(get_workload("fib").program)
        cache.put(graph, "shared-dict", object())
        assert len(cache) == 1
        del graph
        gc.collect()
        assert len(cache) == 0

    def test_compression_artifacts_still_memoizes(self):
        graph = build_cfg(get_workload("fib").program)
        first = compression_artifacts(graph, "shared-dict")
        assert compression_artifacts(graph, "shared-dict") is first


class TestSharedModelDigest:
    def test_retrained_model_digest_matches(self):
        from repro.compress import get_codec
        from repro.compress.stats import block_bytes

        graph = build_cfg(get_workload("gcd").program)
        corpus = [block_bytes(block) for block in graph.blocks]
        for name in ("shared-dict", "shared-huffman", "shared-fields"):
            one, two = get_codec(name), get_codec(name)
            one.train(corpus)
            two.train(corpus)
            assert one.model_digest() == two.model_digest(), name

    def test_untrained_digest_rejected(self):
        from repro.compress import CodecError, get_codec

        with pytest.raises(CodecError, match="trained"):
            get_codec("shared-dict").model_digest()


class TestBlobIntegrity:
    """Corrupt blobs are counted, logged misses — never silent, never
    a crash (the PR-6 regression for the old silent ``return None``)."""

    def _corrupt_one_object(self, store):
        base = os.path.join(store.root, "objects")
        for fan in sorted(os.listdir(base)):
            fan_dir = os.path.join(base, fan)
            for name in sorted(os.listdir(fan_dir)):
                path = os.path.join(fan_dir, name)
                with open(path, "r+b") as handle:
                    first = handle.read(1)
                    handle.seek(0)
                    handle.write(bytes([first[0] ^ 0xFF]))
                return name
        raise AssertionError("store has no objects")

    def test_corrupt_blob_counts_and_warns(self, tmp_path, caplog):
        import logging

        store = ExperimentStore(tmp_path / "store")
        digest = store.put_blob(b"payload")
        self._corrupt_one_object(store)
        with caplog.at_level(logging.WARNING, logger="repro.store"):
            assert store.get_blob(digest) is None  # a miss, no crash
        assert store.corrupt_misses == 1
        assert store.stats()["corrupt_misses"] == 1
        events = [parse_kv(r.message) for r in caplog.records]
        corrupt = [e for e in events
                   if e.get("event") == "store.corrupt_blob"]
        assert corrupt and corrupt[0]["blob"] == digest[:12]
        assert corrupt[0]["action"] == "miss"

    def test_corrupt_cell_record_is_a_miss(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        store.put_cell("f" * 64, {"v": 1})
        self._corrupt_one_object(store)
        assert store.get_cell("f" * 64) is None
        assert store.corrupt_misses == 1

    def test_old_stats_files_load_without_the_new_key(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        with open(os.path.join(store.root, "stats.json"), "w",
                  encoding="utf-8") as handle:
            json.dump({"hits": 3, "misses": 1, "puts": 1}, handle)
        stats = store.stats()
        assert stats["hits"] == 3
        assert stats["corrupt_misses"] == 0
        store.add_usage(corrupt_misses=2)
        assert store.stats()["corrupt_misses"] == 2


class TestVerify:
    def _paths(self, store, kind):
        base = os.path.join(store.root, kind)
        out = []
        for fan in sorted(os.listdir(base)):
            fan_dir = os.path.join(base, fan)
            if os.path.isdir(fan_dir):
                out.extend(
                    os.path.join(fan_dir, name)
                    for name in sorted(os.listdir(fan_dir))
                )
        return out

    def test_clean_store_verifies_ok(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        store.put_cell("a" * 64, {"v": 1})
        report = store.verify()
        assert report["ok"]
        assert report["objects"] == 1
        assert report["refs"] == 1
        assert report["corrupt_objects"] == 0

    def test_corrupt_blob_quarantined_and_ref_pruned(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        store.put_cell("a" * 64, {"v": 1})
        store.put_cell("b" * 64, {"v": 2})
        target = self._paths(store, "objects")[0]
        digest = os.path.basename(target)
        with open(target, "ab") as handle:
            handle.write(b"rot")
        check = store.verify()
        assert not check["ok"]
        assert check["corrupt_objects"] == 1
        assert check["quarantined"] == 0  # check mode never mutates
        assert os.path.exists(target)
        repair = store.verify(repair=True)
        assert repair["quarantined"] == 1
        assert repair["pruned_refs"] == 1
        assert not os.path.exists(target)
        assert os.path.exists(
            os.path.join(store.root, "quarantine", digest)
        )
        # The untouched record still reads; the damaged one misses.
        hits = [store.get_cell("a" * 64), store.get_cell("b" * 64)]
        assert sorted(h is None for h in hits) == [False, True]
        assert store.verify()["ok"]

    def test_dangling_ref_detected_and_pruned(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        store.put_cell("a" * 64, {"v": 1})
        os.unlink(self._paths(store, "objects")[0])
        check = store.verify()
        assert not check["ok"]
        assert check["dangling_refs"] == 1
        repair = store.verify(repair=True)
        assert repair["pruned_refs"] == 1
        assert store.verify()["ok"]
        assert not store.has_cell("a" * 64)

    def test_stale_tmp_files_removed_on_repair(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        fan_dir = os.path.join(store.root, "objects", "zz")
        os.makedirs(fan_dir)
        stale = os.path.join(fan_dir, "orphan.tmp")
        with open(stale, "wb") as handle:
            handle.write(b"half")
        old = time.time() - store.GC_TMP_GRACE_SECONDS - 10
        os.utime(stale, (old, old))
        fresh = os.path.join(fan_dir, "inflight.tmp")
        with open(fresh, "wb") as handle:
            handle.write(b"half")
        report = store.verify(repair=True)
        assert report["tmp_files"] == 1
        assert report["removed_tmp_files"] == 1
        assert not os.path.exists(stale)
        assert os.path.exists(fresh)  # possibly in flight: left alone
