"""Unit tests for the two-pass assembler."""

import pytest

from repro.isa import (
    AssemblyError,
    Opcode,
    ProgramError,
    assemble,
    disassemble_to_source,
)


class TestSyntax:
    def test_minimal_program(self):
        program = assemble("main:\n    halt\n")
        assert len(program) == 1
        assert program.instructions[0].opcode is Opcode.HALT

    def test_comments_stripped(self):
        program = assemble(
            "main: ; entry\n    li r1, 5  # load\n    halt\n"
        )
        assert len(program) == 2

    def test_label_and_instruction_on_one_line(self):
        program = assemble("main: li r1, 1\n    halt")
        assert program.labels["main"] == 0

    def test_register_aliases(self):
        program = assemble("main:\n    mov sp, ra\n    halt")
        instr = program.instructions[0]
        assert instr.rd == 13  # sp
        assert instr.rs1 == 15  # ra

    def test_hex_immediates(self):
        program = assemble("main:\n    li r1, 0x7F\n    halt")
        assert program.instructions[0].imm == 0x7F

    def test_negative_immediates(self):
        program = assemble("main:\n    addi r1, r1, -42\n    halt")
        assert program.instructions[0].imm == -42

    def test_memory_operand_forms(self):
        program = assemble(
            "main:\n    ld r1, 8(r2)\n    st r3, -4(sp)\n    halt"
        )
        load, store = program.instructions[:2]
        assert (load.rd, load.rs1, load.imm) == (1, 2, 8)
        assert (store.rs2, store.rs1, store.imm) == (3, 13, -4)

    def test_case_insensitive_mnemonics(self):
        program = assemble("main:\n    LI r1, 3\n    HALT")
        assert program.instructions[0].opcode is Opcode.LI


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            assemble("main:\n    frobnicate r1\n    halt")

    def test_bad_register(self):
        with pytest.raises(AssemblyError, match="bad register"):
            assemble("main:\n    li r16, 0\n    halt")

    def test_bad_immediate(self):
        with pytest.raises(AssemblyError, match="bad immediate"):
            assemble("main:\n    li r1, banana\n    halt")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError, match="expects"):
            assemble("main:\n    add r1, r2\n    halt")

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblyError, match="memory operand"):
            assemble("main:\n    ld r1, r2\n    halt")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError, match="duplicate label"):
            assemble("main:\n    nop\nmain:\n    halt")

    def test_undefined_branch_target(self):
        with pytest.raises(ProgramError, match="undefined label"):
            assemble("main:\n    jmp nowhere\n    halt")

    def test_missing_entry_label(self):
        with pytest.raises(ProgramError, match="entry label"):
            assemble("start:\n    halt")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblyError) as excinfo:
            assemble("main:\n    nop\n    badop\n    halt")
        assert excinfo.value.line_number == 3


class TestLinking:
    def test_branch_targets_resolved_to_addresses(self):
        program = assemble(
            "main:\n    jmp next\n    nop\nnext:\n    halt"
        )
        assert program.instructions[0].imm == 8  # third instruction

    def test_backward_branch(self):
        program = assemble(
            "main:\nloop:\n    subi r1, r1, 1\n    bne r1, r0, loop\n"
            "    halt"
        )
        assert program.instructions[1].imm == 0

    def test_custom_entry_label(self):
        program = assemble(
            "start:\n    halt", entry_label="start"
        )
        assert program.entry_label == "start"
        assert program.entry_index == 0


class TestDisassemblyRoundtrip:
    def test_source_roundtrip_preserves_semantics(self, loop_program):
        text = disassemble_to_source(loop_program)
        again = assemble(text, loop_program.name)
        assert len(again) == len(loop_program)
        for a, b in zip(loop_program.instructions, again.instructions):
            assert a.opcode == b.opcode
            assert (a.rd, a.rs1, a.rs2) == (b.rd, b.rs1, b.rs2)
            assert a.imm == b.imm

    def test_roundtrip_synthesises_labels_for_raw_targets(self):
        program = assemble("main:\n    jmp end\n    nop\nend:\n    halt")
        text = disassemble_to_source(program)
        assert "end:" in text
