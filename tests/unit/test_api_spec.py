"""Unit tests for the declarative experiment spec layer."""

import json

import pytest

from repro.api import (
    ExperimentSpec,
    SpecError,
    cases,
    grid,
    parse_k,
    zip_axes,
)


class TestParseK:
    def test_positive_ints_pass_through(self):
        assert parse_k(1) == 1
        assert parse_k(16) == 16
        assert parse_k("8") == 8

    def test_infinity_spellings(self):
        assert parse_k(None) is None
        assert parse_k("inf") is None
        assert parse_k("none") is None
        assert parse_k(" INF ") is None

    def test_zero_and_negatives_rejected(self):
        for bad in (0, -1, "0", "-3"):
            with pytest.raises(SpecError, match="k must be >= 1"):
                parse_k(bad)

    def test_garbage_rejected(self):
        for bad in ("infinity", "", "1.5", 2.5, True):
            with pytest.raises(SpecError):
                parse_k(bad)


class TestAxes:
    def test_grid_cartesian_product_in_order(self):
        overrides = grid(k_compress=[1, 2], codec=["lzw", "rle"])
        assert overrides == [
            {"k_compress": 1, "codec": "lzw"},
            {"k_compress": 1, "codec": "rle"},
            {"k_compress": 2, "codec": "lzw"},
            {"k_compress": 2, "codec": "rle"},
        ]

    def test_zip_parallel_axes(self):
        overrides = zip_axes(k_compress=[1, 2], k_decompress=[3, 4])
        assert overrides == [
            {"k_compress": 1, "k_decompress": 3},
            {"k_compress": 2, "k_decompress": 4},
        ]

    def test_zip_length_mismatch_rejected(self):
        with pytest.raises(SpecError, match="equal-length"):
            zip_axes(k_compress=[1, 2], k_decompress=[3])

    def test_cases_literal_points(self):
        overrides = cases({"codec": "lzw"}, {"codec": "rle"})
        assert overrides == [{"codec": "lzw"}, {"codec": "rle"}]

    def test_unknown_field_rejected(self):
        with pytest.raises(SpecError, match="unknown config field"):
            grid(compression_level=[1])

    def test_empty_axis_rejected(self):
        with pytest.raises(SpecError, match="no values"):
            grid(k_compress=[])

    def test_axes_compose_by_concatenation(self):
        overrides = grid(k_compress=[1]) + cases({"codec": "rle"})
        assert overrides == [{"k_compress": 1}, {"codec": "rle"}]


class TestExperimentSpec:
    def test_cells_workload_major_deterministic(self):
        spec = ExperimentSpec(
            workloads=["fib", "gcd"],
            axes=grid(k_compress=[1, 2]),
        )
        cells = spec.cells()
        assert [(c.workload, c.config.k_compress) for c in cells] == [
            ("fib", 1), ("fib", 2), ("gcd", 1), ("gcd", 2),
        ]
        assert [c.index for c in cells] == [0, 1, 2, 3]

    def test_hierarchy_is_a_sweepable_axis(self):
        spec = ExperimentSpec(
            workloads=["fib"],
            axes=grid(hierarchy=["flat", "spm-front"]),
        )
        configs = spec.configs()
        assert [c.hierarchy for c in configs] == ["flat", "spm-front"]

    def test_unknown_hierarchy_rejected_at_spec_time(self):
        with pytest.raises(SpecError, match="hierarchy"):
            ExperimentSpec(
                workloads=["fib"],
                base={"hierarchy": "warp"},
            )

    def test_base_merged_under_overrides(self):
        spec = ExperimentSpec(
            workloads=["fib"],
            base={"codec": "rle", "k_compress": 4},
            axes=cases({}, {"k_compress": "inf"}),
        )
        configs = spec.configs()
        assert [c.codec for c in configs] == ["rle", "rle"]
        assert [c.k_compress for c in configs] == [4, None]

    def test_all_expands_registry(self):
        from repro.workloads import available_workloads

        spec = ExperimentSpec(workloads="all")
        assert spec.workload_names() == available_workloads()

    def test_unknown_workload_rejected(self):
        with pytest.raises(SpecError, match="unknown workload"):
            ExperimentSpec(workloads=["nope"])

    def test_unknown_engine_rejected(self):
        with pytest.raises(SpecError, match="unknown sweep engine"):
            ExperimentSpec(workloads=["fib"], engine="warp")

    def test_unknown_executor_rejected(self):
        with pytest.raises(SpecError, match="unknown executor"):
            ExperimentSpec(workloads=["fib"], executor="gpu")

    def test_jobs_implies_parallel_executor(self):
        assert ExperimentSpec(workloads=["fib"]).executor == "serial"
        assert ExperimentSpec(workloads=["fib"], jobs=4).executor == \
            "parallel"
        # an explicit executor always wins
        assert ExperimentSpec(
            workloads=["fib"], jobs=4, executor="serial"
        ).executor == "serial"

    def test_spec_jobs_flow_through_run_experiment(self):
        from repro import api

        spec = ExperimentSpec(
            workloads=["fib"], jobs=2,
            axes=grid(k_compress=[1, 2]),
        )
        result = api.run_experiment(spec)
        assert result.meta["executor"] == "parallel"
        assert result.meta["jobs"] == 2

    def test_invalid_config_rejected_at_build_time(self):
        with pytest.raises(SpecError, match="invalid config"):
            ExperimentSpec(
                workloads=["fib"], axes=cases({"codec": "nope"})
            )

    def test_partitions_group_by_workload(self):
        spec = ExperimentSpec(
            workloads=["fib", "gcd"], axes=grid(k_compress=[1, 2])
        )
        partitions = spec.partitions()
        assert [name for name, _ in partitions] == ["fib", "gcd"]
        assert all(len(configs) == 2 for _, configs in partitions)


class TestSpecJson:
    def test_from_dict_grid(self):
        spec = ExperimentSpec.from_dict({
            "workloads": ["fib"],
            "base": {"codec": "rle"},
            "axes": {"grid": {"k_compress": [1, "inf"]}},
            "engine": "trace",
            "jobs": 2,
        })
        assert spec.engine == "trace"
        assert [c.k_compress for c in spec.configs()] == [1, None]

    def test_from_dict_axis_block_list(self):
        spec = ExperimentSpec.from_dict({
            "workloads": ["fib"],
            "axes": [
                {"grid": {"k_compress": [1]}},
                {"cases": [{"codec": "rle"}]},
                {"zip": {"k_compress": [2], "k_decompress": [3]}},
            ],
        })
        assert len(spec.configs()) == 3

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(SpecError, match="unknown spec key"):
            ExperimentSpec.from_dict({"workloads": ["fib"], "cpus": 4})

    def test_from_dict_rejects_bad_axes_operator(self):
        with pytest.raises(SpecError, match="unknown axes operator"):
            ExperimentSpec.from_dict({
                "workloads": ["fib"], "axes": {"product": {}},
            })

    def test_from_file_round_trip(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "name": "round-trip",
            "workloads": ["fib", "gcd"],
            "base": {"decompression": "ondemand"},
            "axes": {"grid": {"k_compress": [1, 2]}},
            "engine": "trace",
        }))
        spec = ExperimentSpec.from_file(str(path))
        assert spec.name == "round-trip"
        assert len(spec.cells()) == 4
        # to_dict -> from_dict preserves the expansion
        again = ExperimentSpec.from_dict(spec.to_dict())
        assert [c.workload for c in again.cells()] == \
            [c.workload for c in spec.cells()]

    def test_from_file_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SpecError, match="cannot parse"):
            ExperimentSpec.from_file(str(path))

    def test_example_spec_file_is_valid(self):
        import pathlib

        repo = pathlib.Path(__file__).resolve().parents[2]
        spec = ExperimentSpec.from_file(
            str(repo / "examples" / "specs" / "kedge_grid.json")
        )
        assert spec.engine == "trace"
        assert len(spec.cells()) == 18
