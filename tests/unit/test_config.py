"""Unit tests for SimulationConfig validation and naming."""

import pytest

from repro.cfg import EdgeProfile
from repro.core import ConfigError, SimulationConfig
from repro.strategies.baselines import (
    block_granularity,
    function_granularity,
    naive_always_compressed,
    uncompressed_baseline,
)


class TestValidation:
    def test_defaults_valid(self):
        config = SimulationConfig()
        assert config.codec == "shared-dict"

    def test_unknown_codec(self):
        with pytest.raises(ConfigError, match="codec"):
            SimulationConfig(codec="zstd")

    def test_unknown_strategy(self):
        with pytest.raises(ConfigError, match="decompression"):
            SimulationConfig(decompression="eager")

    def test_invalid_k_compress(self):
        with pytest.raises(ConfigError, match="k_compress"):
            SimulationConfig(k_compress=0)

    def test_none_k_compress_allowed(self):
        assert SimulationConfig(k_compress=None).k_compress is None

    def test_invalid_k_decompress(self):
        with pytest.raises(ConfigError, match="k_decompress"):
            SimulationConfig(k_decompress=0)

    def test_static_profile_needs_profile(self):
        with pytest.raises(ConfigError, match="profile"):
            SimulationConfig(
                decompression="pre-single", predictor="static-profile"
            )

    def test_static_profile_with_profile_ok(self):
        config = SimulationConfig(
            decompression="pre-single",
            predictor="static-profile",
            profile=EdgeProfile(),
        )
        assert config.profile is not None

    def test_invalid_budget(self):
        with pytest.raises(ConfigError, match="budget"):
            SimulationConfig(memory_budget=0)

    def test_invalid_contention(self):
        with pytest.raises(ConfigError, match="contention"):
            SimulationConfig(contention=2.0)

    def test_invalid_granularity(self):
        with pytest.raises(ConfigError, match="granularity"):
            SimulationConfig(granularity="page")

    def test_invalid_image_scheme(self):
        with pytest.raises(ConfigError, match="image scheme"):
            SimulationConfig(image_scheme="paged")

    def test_negative_costs_rejected(self):
        with pytest.raises(ConfigError, match="cycle costs"):
            SimulationConfig(fault_cycles=-1)

    def test_invalid_backlog(self):
        with pytest.raises(ConfigError):
            SimulationConfig(max_prefetch_backlog=0)


class TestReplace:
    def test_replace_revalidates(self):
        config = SimulationConfig()
        with pytest.raises(ConfigError):
            config.replace(codec="nope")

    def test_replace_preserves_other_fields(self):
        config = SimulationConfig(k_compress=7, codec="lzw")
        derived = config.replace(k_compress=3)
        assert derived.codec == "lzw"
        assert derived.k_compress == 3
        assert config.k_compress == 7  # original untouched


class TestStrategyName:
    def test_uncompressed(self):
        assert SimulationConfig(
            decompression="none"
        ).strategy_name == "uncompressed"

    def test_ondemand_name(self):
        name = SimulationConfig(
            decompression="ondemand", k_compress=4
        ).strategy_name
        assert "ondemand" in name and "kc=4" in name

    def test_pre_single_mentions_predictor(self):
        name = SimulationConfig(
            decompression="pre-single", predictor="markov"
        ).strategy_name
        assert "markov" in name and "kd=" in name

    def test_label_overrides(self):
        assert SimulationConfig(label="mine").strategy_name == "mine"

    def test_infinite_k_rendered(self):
        assert "kc=inf" in SimulationConfig(
            k_compress=None
        ).strategy_name


class TestBaselineFactories:
    def test_uncompressed_baseline(self):
        config = uncompressed_baseline()
        assert config.decompression == "none"
        assert config.codec == "null"

    def test_naive_baseline(self):
        config = naive_always_compressed()
        assert config.k_compress == 1
        assert config.decompression == "ondemand"

    def test_block_granularity(self):
        config = block_granularity(k_compress=9)
        assert config.granularity == "block"
        assert config.k_compress == 9

    def test_function_granularity(self):
        config = function_granularity()
        assert config.granularity == "function"

    def test_overrides_forwarded(self):
        config = block_granularity(memory_budget=4096)
        assert config.memory_budget == 4096
