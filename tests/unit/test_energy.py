"""Unit tests for the traffic/energy extension (Section 2 claims)."""

import pytest

from repro.analysis import EnergyModel, TrafficReport, compare_traffic
from repro.cfg import build_cfg
from repro.core import SimulationConfig
from repro.core.manager import CodeCompressionManager
from repro.workloads import get_workload

_FAST = dict(trace_events=False, record_trace=False)


def _run(cfg, **overrides):
    config = SimulationConfig(**_FAST, **overrides)
    return CodeCompressionManager(cfg, config).run()


@pytest.fixture(scope="module")
def composite_cfg():
    return build_cfg(get_workload("composite").program)


class TestTrafficCounters:
    def test_uncompressed_streams_every_entry(self, composite_cfg):
        result = _run(composite_cfg, decompression="none")
        expected = sum(
            composite_cfg.block(b).size_bytes
            for b in result.block_trace
        ) if result.block_trace else None
        # trace recording disabled; recompute via a traced run
        traced = CodeCompressionManager(
            composite_cfg,
            SimulationConfig(decompression="none", trace_events=False,
                             record_trace=True),
        ).run()
        expected = sum(
            composite_cfg.block(b).size_bytes
            for b in traced.block_trace
        )
        assert traced.counters.target_memory_bytes == expected
        assert result.counters.target_memory_bytes == expected

    def test_compressed_reads_payload_per_materialisation(
        self, composite_cfg
    ):
        manager = CodeCompressionManager(
            composite_cfg,
            SimulationConfig(decompression="ondemand", k_compress=None,
                             **_FAST),
        )
        result = manager.run()
        # never recompress: each touched block materialised exactly once
        touched_payload = sum(
            manager.image.block(block_id).compressed_size
            for block_id in {
                b for b in range(len(composite_cfg.blocks))
                if manager.image.is_resident(b)
            }
        )
        assert result.counters.target_memory_bytes == touched_payload

    def test_recompression_causes_refetch_traffic(self, composite_cfg):
        lazy = _run(composite_cfg, decompression="ondemand",
                    k_compress=None)
        churny = _run(composite_cfg, decompression="ondemand",
                      k_compress=1)
        assert churny.counters.target_memory_bytes > \
            lazy.counters.target_memory_bytes


class TestTrafficReport:
    def test_reduction_fraction(self):
        report = TrafficReport(baseline_bytes=1000, compressed_bytes=400)
        assert report.reduction == pytest.approx(0.6)

    def test_zero_baseline(self):
        assert TrafficReport(0, 0).reduction == 0.0

    def test_compare_traffic(self, composite_cfg):
        base = _run(composite_cfg, decompression="none")
        compressed = _run(composite_cfg, decompression="ondemand",
                          k_compress=16)
        report = compare_traffic(base, compressed)
        assert report.baseline_bytes == \
            base.counters.target_memory_bytes
        assert 0.0 < report.reduction <= 1.0


class TestEnergyModel:
    def test_components(self):
        model = EnergyModel(bus_nj_per_byte=2.0, cpu_nj_per_cycle=0.5)
        assert model.traffic_energy(10) == 20.0
        assert model.decompress_energy(4) == 2.0

    def test_total_energy_positive_for_compressed_run(
        self, composite_cfg
    ):
        result = _run(composite_cfg, decompression="ondemand",
                      k_compress=16)
        assert EnergyModel().total_energy(result) > 0

    def test_compression_saves_energy_on_suite_workload(
        self, composite_cfg
    ):
        """Section 2's claim, end to end: less data read -> less energy."""
        model = EnergyModel()
        stream = _run(composite_cfg, decompression="none")
        compressed = _run(composite_cfg, decompression="ondemand",
                          k_compress=16)
        assert model.total_energy(compressed) < \
            model.total_energy(stream)
