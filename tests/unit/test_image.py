"""Unit tests for the memory image schemes."""

import pytest

from repro.compress import get_codec
from repro.memory import (
    AllocationError,
    CompressedCodeFault,
    ImageError,
    InPlaceImage,
    SeparateAreaImage,
)


@pytest.fixture
def image(loop_cfg):
    return SeparateAreaImage(loop_cfg, get_codec("shared-dict"))


@pytest.fixture
def inplace(loop_cfg):
    return InPlaceImage(loop_cfg, get_codec("shared-dict"))


class TestSeparateAreaImage:
    def test_starts_fully_compressed(self, image):
        assert image.resident_blocks() == set()
        assert image.footprint_bytes == image.compressed_image_size

    def test_minimum_image_is_compressed_size(self, image, loop_cfg):
        # Section 5: the all-compressed image is the minimum memory
        assert image.footprint_bytes <= max(
            loop_cfg.total_size_bytes(), image.compressed_image_size
        )

    def test_fetch_compressed_faults(self, image):
        with pytest.raises(CompressedCodeFault) as excinfo:
            image.fetch_check(0)
        assert excinfo.value.block_id == 0

    def test_decompress_makes_resident(self, image):
        image.decompress(0)
        assert image.is_resident(0)
        image.fetch_check(0)  # no fault now

    def test_decompress_grows_footprint(self, image, loop_cfg):
        before = image.footprint_bytes
        image.decompress(0)
        assert image.footprint_bytes == \
            before + max(loop_cfg.block(0).size_bytes, 4)

    def test_release_returns_footprint(self, image):
        base = image.footprint_bytes
        image.decompress(0)
        image.release(0)
        assert image.footprint_bytes == base
        assert not image.is_resident(0)

    def test_double_decompress_rejected(self, image):
        image.decompress(0)
        with pytest.raises(ImageError, match="already"):
            image.decompress(0)

    def test_release_nonresident_rejected(self, image):
        with pytest.raises(ImageError, match="not decompressed"):
            image.release(0)

    def test_compressed_area_immutable(self, image):
        addresses = [b.compressed_addr for b in image.blocks]
        image.decompress(0)
        image.decompress(1)
        image.release(0)
        assert [b.compressed_addr for b in image.blocks] == addresses

    def test_decompressed_area_above_compressed(self, image):
        address = image.decompress(0)
        assert address >= image.compressed_image_size - \
            image.model_overhead

    def test_payload_integrity_all_blocks(self, image, loop_cfg):
        for block in loop_cfg.blocks:
            assert image.verify_block(block.block_id)

    def test_bounded_capacity(self, loop_cfg):
        image = SeparateAreaImage(
            loop_cfg, get_codec("shared-dict"), capacity=8
        )
        image.decompress(0)  # entry block is 8B
        with pytest.raises(AllocationError):
            image.decompress(1)

    def test_compression_ratio_reported(self, image):
        assert 0 < image.compression_ratio < 2.0

    def test_decompress_latency_positive(self, image):
        assert image.decompress_latency(0) > 0


class TestInPlaceImage:
    def test_initial_layout_packed(self, inplace):
        assert inplace.footprint_bytes > 0
        assert inplace.relocations == 0

    def test_decompress_reallocates(self, inplace, loop_cfg):
        inplace.decompress(0)
        assert inplace.is_resident(0)
        # the uncompressed copy occupies the area now
        assert inplace.footprint_bytes >= loop_cfg.block(0).size_bytes

    def test_release_restores_compressed_slot(self, inplace):
        inplace.decompress(0)
        inplace.release(0)
        assert not inplace.is_resident(0)

    def test_churn_causes_relocations(self, inplace, loop_cfg):
        for _ in range(4):
            for block in loop_cfg.blocks:
                inplace.decompress(block.block_id)
            for block in loop_cfg.blocks:
                inplace.release(block.block_id)
        assert inplace.relocations > 0

    def test_address_space_grows_with_churn(self, inplace):
        start_extent = inplace.address_space_bytes
        for _ in range(6):
            inplace.decompress(0)
            inplace.decompress(2)
            inplace.release(0)
            inplace.release(2)
        assert inplace.address_space_bytes >= start_extent

    def test_payload_integrity(self, inplace, loop_cfg):
        for block in loop_cfg.blocks:
            assert inplace.verify_block(block.block_id)
