"""Unit tests for trace-driven simulation."""

import pytest

from repro.cfg import build_cfg
from repro.core import SimulationConfig
from repro.core.manager import CodeCompressionManager
from repro.runtime import MachineError, TraceMachine, simulate_trace
from repro.workloads import get_workload

_FAST = dict(trace_events=False, record_trace=False)


@pytest.fixture(scope="module")
def traced_workload():
    workload = get_workload("dijkstra")
    cfg = build_cfg(workload.program)
    base = CodeCompressionManager(
        cfg,
        SimulationConfig(decompression="none", trace_events=False,
                         record_trace=True),
    ).run()
    return cfg, base.block_trace


class TestTraceMachine:
    def test_replays_trace(self, loop_cfg):
        trace = [loop_cfg.entry_id]
        trace.append(loop_cfg.successors(trace[-1])[0])
        machine = TraceMachine(loop_cfg, trace)
        outcome = machine.run_block(loop_cfg.entry)
        assert outcome.next_block_id == trace[1]
        outcome = machine.run_block(loop_cfg.block(trace[1]))
        assert outcome.next_block_id is None
        assert machine.halted

    def test_rejects_empty_trace(self, loop_cfg):
        with pytest.raises(ValueError, match="at least one"):
            TraceMachine(loop_cfg, [])

    def test_rejects_wrong_entry(self, loop_cfg):
        exit_id = loop_cfg.exit_ids[0]
        with pytest.raises(ValueError, match="entry"):
            TraceMachine(loop_cfg, [exit_id])

    def test_rejects_impossible_transition(self, loop_cfg):
        exit_id = loop_cfg.exit_ids[0]
        with pytest.raises(ValueError, match="impossible"):
            TraceMachine(loop_cfg, [loop_cfg.entry_id, exit_id])

    def test_detects_divergence(self, loop_cfg):
        trace = [loop_cfg.entry_id,
                 loop_cfg.successors(loop_cfg.entry_id)[0]]
        machine = TraceMachine(loop_cfg, trace)
        wrong = loop_cfg.block(loop_cfg.exit_ids[0])
        with pytest.raises(MachineError, match="divergence"):
            machine.run_block(wrong)

    def test_cycle_costs_match_static_block_costs(self, loop_cfg):
        trace = [loop_cfg.entry_id]
        machine = TraceMachine(loop_cfg, trace)
        outcome = machine.run_block(loop_cfg.entry)
        assert outcome.cycles == loop_cfg.entry.cycle_cost


class TestEquivalence:
    @pytest.mark.parametrize("config", [
        SimulationConfig(decompression="ondemand", k_compress=2, **_FAST),
        SimulationConfig(decompression="ondemand", k_compress=None,
                         **_FAST),
        SimulationConfig(decompression="pre-all", k_compress=8,
                         k_decompress=2, **_FAST),
        SimulationConfig(decompression="pre-single", k_compress=8,
                         k_decompress=2, **_FAST),
    ])
    def test_trace_metrics_match_full_simulation(self, traced_workload,
                                                 config):
        cfg, trace = traced_workload
        full = CodeCompressionManager(cfg, config).run()
        traced = simulate_trace(cfg, trace, config)
        assert traced.total_cycles == full.total_cycles
        assert traced.counters.faults == full.counters.faults
        assert traced.counters.decompressions == \
            full.counters.decompressions
        assert traced.counters.stall_cycles == \
            full.counters.stall_cycles
        assert traced.peak_footprint == full.peak_footprint
        assert traced.average_footprint == \
            pytest.approx(full.average_footprint)

    def test_trace_sweep_is_usable_for_k_exploration(self,
                                                     traced_workload):
        cfg, trace = traced_workload
        footprints = []
        for k in (1, 8, 64):
            result = simulate_trace(
                cfg, trace,
                SimulationConfig(decompression="ondemand", k_compress=k,
                                 **_FAST),
            )
            footprints.append(result.average_footprint)
        assert footprints == sorted(footprints)


class TestEngineTagging:
    def test_trace_runs_report_no_registers(self, traced_workload):
        cfg, trace = traced_workload
        result = simulate_trace(
            cfg, trace,
            SimulationConfig(decompression="ondemand", k_compress=2,
                             **_FAST),
        )
        assert result.engine == "trace"
        assert result.registers is None

    def test_machine_runs_report_registers(self, traced_workload):
        cfg, _ = traced_workload
        result = CodeCompressionManager(
            cfg,
            SimulationConfig(decompression="ondemand", k_compress=2,
                             **_FAST),
        ).run()
        assert result.engine == "machine"
        assert isinstance(result.registers, list)
        assert result.registers


class TestTraceTruncation:
    @pytest.fixture
    def tiny_cap(self, monkeypatch):
        import repro.core.manager as manager_mod

        monkeypatch.setattr(manager_mod, "_TRACE_CAP", 8)

    def _truncated_result(self, tiny_cap_cfg):
        return CodeCompressionManager(
            tiny_cap_cfg,
            SimulationConfig(decompression="none", trace_events=False,
                             record_trace=True),
        ).run()

    def test_truncation_is_flagged(self, tiny_cap, loop_cfg):
        result = self._truncated_result(loop_cfg)
        assert result.trace_truncated
        assert len(result.block_trace) == 8
        assert result.counters.blocks_executed > 8

    def test_untruncated_runs_are_not_flagged(self, traced_workload):
        cfg, trace = traced_workload
        result = CodeCompressionManager(
            cfg,
            SimulationConfig(decompression="none", trace_events=False,
                             record_trace=True),
        ).run()
        assert not result.trace_truncated
        assert len(result.block_trace) == \
            result.counters.blocks_executed

    def test_prepared_trace_refuses_truncated_result(self, tiny_cap,
                                                     loop_cfg):
        from repro.runtime import PreparedTrace

        result = self._truncated_result(loop_cfg)
        with pytest.raises(ValueError, match="truncated"):
            PreparedTrace.from_result(loop_cfg, result)

    def test_prepared_trace_accepts_complete_result(self,
                                                    traced_workload):
        from repro.runtime import PreparedTrace

        cfg, _ = traced_workload
        result = CodeCompressionManager(
            cfg,
            SimulationConfig(decompression="none", trace_events=False,
                             record_trace=True),
        ).run()
        prepared = PreparedTrace.from_result(cfg, result)
        assert prepared.trace == result.block_trace

    def test_trace_engine_falls_back_on_truncated_recording(
        self, tiny_cap
    ):
        from repro.analysis.sweep import sweep

        workload = get_workload("fib")
        configs = [
            SimulationConfig(decompression="ondemand", k_compress=k,
                             **_FAST)
            for k in (1, 4)
        ]
        machine = sweep([workload], configs, engine="machine")
        trace = sweep([workload], configs, engine="trace")
        # The recording hit the cap, so every cell must have been
        # interpreted — metrics identical, registers present.
        for m_run, t_run in zip(machine.runs, trace.runs):
            assert t_run.result.total_cycles == \
                m_run.result.total_cycles
            assert t_run.result.counters == m_run.result.counters
            assert t_run.result.engine == "machine"

    def test_fallback_emits_parseable_kv_event(self, tiny_cap, caplog):
        import logging

        from repro.analysis.sweep import sweep
        from repro.log import parse_kv

        workload = get_workload("fib")
        configs = [SimulationConfig(decompression="ondemand",
                                    k_compress=1, **_FAST)]
        with caplog.at_level(logging.WARNING, logger="repro.sweep"):
            sweep([workload], configs, engine="trace")
        events = [
            parse_kv(record.getMessage())
            for record in caplog.records
            if "sweep.trace_fallback" in record.getMessage()
        ]
        assert len(events) == 1, "fallback must be announced exactly once"
        event = events[0]
        assert event["event"] == "sweep.trace_fallback"
        assert event["workload"] == "fib"
        assert event["cap"] == "8"  # the monkeypatched recording cap
        assert event["reason"] == "truncated"

    def test_complete_recording_emits_no_fallback_event(self, caplog):
        import logging

        from repro.analysis.sweep import sweep

        workload = get_workload("fib")
        configs = [SimulationConfig(decompression="ondemand",
                                    k_compress=1, **_FAST)]
        with caplog.at_level(logging.WARNING, logger="repro.sweep"):
            result = sweep([workload], configs, engine="trace")
        assert result.runs[0].result.engine == "trace"
        assert not any(
            "sweep.trace_fallback" in record.getMessage()
            for record in caplog.records
        )


class TestShardedWindowBuild:
    def test_sharded_build_matches_serial(self, traced_workload,
                                          monkeypatch):
        import repro.runtime.trace_sim as trace_sim

        cfg, trace = traced_workload
        unit_of = {block.block_id: block.block_id
                   for block in cfg.blocks}

        serial = trace_sim.PreparedTrace(cfg, trace)
        serial_plan = serial.plan("block", unit_of)

        # Force the sharded path even for this modest trace.
        monkeypatch.setattr(trace_sim, "_SHARD_MIN_WINDOWS", 1)
        sharded = trace_sim.PreparedTrace(cfg, trace)
        sharded.shard_processes = 2
        sharded_plan = sharded.plan("block", unit_of)

        assert sharded_plan.windows == serial_plan.windows
        assert sharded_plan.total_cycles == serial_plan.total_cycles
        assert sharded_plan.edge_items == serial_plan.edge_items

    def test_replay_shards_env_opts_in(self, traced_workload,
                                       monkeypatch):
        from repro.analysis.sweep import _recorded_trace
        from repro.workloads import get_workload

        monkeypatch.setenv("REPRO_REPLAY_SHARDS", "3")
        workload = get_workload("dijkstra")
        cfg, _ = traced_workload
        prepared, validation, reason = _recorded_trace(
            workload, cfg,
            SimulationConfig(decompression="ondemand", **_FAST),
            None,
        )
        assert reason is None
        assert prepared.shard_processes == 3

    def test_sharded_replay_metrics_match(self, traced_workload,
                                          monkeypatch):
        import repro.runtime.trace_sim as trace_sim

        cfg, trace = traced_workload
        config = SimulationConfig(
            codec="shared-dict", decompression="ondemand",
            k_compress=2, **_FAST,
        )
        serial = simulate_trace(
            cfg, trace_sim.PreparedTrace(cfg, trace), config
        )
        monkeypatch.setattr(trace_sim, "_SHARD_MIN_WINDOWS", 1)
        prepared = trace_sim.PreparedTrace(cfg, trace)
        prepared.shard_processes = 2
        sharded = simulate_trace(cfg, prepared, config)
        assert sharded.total_cycles == serial.total_cycles
        assert sharded.counters == serial.counters
