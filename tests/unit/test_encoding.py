"""Unit tests for instruction encoding/decoding."""

import pytest

from repro.isa import instructions as ins
from repro.isa.encoding import (
    EncodingError,
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
    roundtrips,
)
from repro.isa.instructions import INSTRUCTION_SIZE, Instruction, Opcode


class TestEncodeBasics:
    def test_encoded_size_fixed(self):
        for instr in (ins.nop(), ins.add(1, 2, 3), ins.li(4, -100)):
            assert len(encode_instruction(instr)) == INSTRUCTION_SIZE

    def test_opcode_in_first_byte(self):
        data = encode_instruction(ins.add(1, 2, 3))
        assert data[0] == Opcode.ADD

    def test_registers_packed_in_second_byte(self):
        data = encode_instruction(ins.add(0xA, 0xB, 0xC))
        assert data[1] == (0xA << 4) | 0xB
        assert data[3] & 0xF == 0xC

    def test_negative_immediate_two_complement(self):
        data = encode_instruction(ins.li(1, -1))
        assert data[2] == 0xFF and data[3] == 0xFF

    def test_signed_immediate_range_enforced(self):
        with pytest.raises(EncodingError, match="signed 16-bit"):
            encode_instruction(ins.li(1, 40000))
        with pytest.raises(EncodingError, match="signed 16-bit"):
            encode_instruction(ins.addi(1, 2, -40000))

    def test_logical_immediates_are_unsigned(self):
        # 0x8320 exceeds the signed range but is valid for ORI.
        data = encode_instruction(ins.ori(1, 1, 0x8320))
        decoded = decode_instruction(data)
        assert decoded.imm == 0x8320

    def test_logical_immediate_negative_rejected(self):
        with pytest.raises(EncodingError, match="unsigned"):
            encode_instruction(ins.ori(1, 1, -1))

    def test_lui_unsigned_range(self):
        assert decode_instruction(
            encode_instruction(ins.lui(2, 0xEDB8))
        ).imm == 0xEDB8
        with pytest.raises(EncodingError):
            encode_instruction(ins.lui(2, 0x10000))

    def test_branch_address_unsigned(self):
        resolved = ins.jmp("x").with_imm(0xFFFC)
        decoded = decode_instruction(encode_instruction(resolved))
        assert decoded.imm == 0xFFFC

    def test_branch_address_overflow_rejected(self):
        with pytest.raises(EncodingError, match="16-bit"):
            encode_instruction(ins.jmp("x").with_imm(0x10000))


class TestDecode:
    def test_unknown_opcode_rejected(self):
        with pytest.raises(EncodingError, match="unknown opcode"):
            decode_instruction(bytes((0xEE, 0, 0, 0)))

    def test_truncated_input_rejected(self):
        with pytest.raises(EncodingError, match="truncated"):
            decode_instruction(b"\x01\x00")

    def test_misaligned_program_rejected(self):
        with pytest.raises(EncodingError, match="multiple"):
            decode_program(b"\x00" * 6)

    def test_conditional_branch_register_packing(self):
        # Conditional branches pack rs2 into the rd nibble.
        source = [ins.beq(3, 7, "t").with_imm(0x10)]
        decoded = decode_program(encode_program(source))
        assert decoded[0].rs1 == 3
        assert decoded[0].rs2 == 7
        assert decoded[0].rd == 0


class TestProgramRoundtrip:
    def test_mixed_program_roundtrips(self):
        program = [
            ins.li(1, 100),
            ins.addi(2, 1, -5),
            ins.mul(3, 1, 2),
            ins.ld(4, 1, 16),
            ins.st(4, 2, -8),
            ins.beq(1, 2, "x").with_imm(0x14),
            ins.jmp("y").with_imm(0x00),
            ins.call("z").with_imm(0x1C),
            ins.ret(),
            ins.halt(),
        ]
        assert roundtrips(program)

    def test_every_opcode_roundtrips(self):
        program = []
        for opcode in Opcode:
            if opcode in ins.REG_REG_OPS:
                program.append(Instruction(opcode, rd=1, rs1=2, rs2=3))
            elif opcode in ins.REG_IMM_OPS:
                imm = 9 if opcode in (Opcode.ANDI, Opcode.ORI,
                                      Opcode.XORI) else -9
                program.append(Instruction(opcode, rd=1, rs1=2, imm=imm))
            elif opcode in (Opcode.JMP, Opcode.CALL):
                program.append(Instruction(opcode, imm=0x40))
            elif opcode in ins.BRANCH_OPS:
                program.append(Instruction(opcode, rs1=1, rs2=2, imm=0x40))
            elif opcode is Opcode.ST:
                program.append(Instruction(opcode, rs1=2, rs2=3, imm=-4))
            elif opcode in (Opcode.LI, Opcode.LD):
                program.append(Instruction(opcode, rd=1, rs1=2, imm=-4))
            elif opcode is Opcode.LUI:
                program.append(Instruction(opcode, rd=1, imm=0xBEEF))
            else:
                program.append(Instruction(opcode, rd=1, rs1=2))
        assert roundtrips(program)

    def test_encode_program_length(self):
        program = [ins.nop()] * 7
        assert len(encode_program(program)) == 7 * INSTRUCTION_SIZE
