"""Unit tests for repro.selection: specs, policies, mixed artifacts."""

import pytest

from repro.cfg import build_cfg
from repro.core import ConfigError, SimulationConfig
from repro.memory.image import compression_artifacts
from repro.selection import (
    ASSIGNMENTS,
    UNCOMPRESSED,
    AssignmentContext,
    AssignmentError,
    AssignmentPolicy,
    KnapsackAssignment,
    assignment_artifacts,
    available_assignments,
    build_assignment,
    make_policy,
    parse_assignment,
    unit_map,
    validate_assignment,
)
from repro import api
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def composite_cfg():
    return build_cfg(get_workload("composite").program)


@pytest.fixture(scope="module")
def composite_profile():
    return api.profile_workload("composite")


class TestSpecParsing:
    def test_plain_names(self):
        for name in ("uniform", "hotness-threshold", "knapsack"):
            assert parse_assignment(name) == (name, ())

    def test_numeric_and_string_params(self):
        assert parse_assignment("knapsack:0.9") == ("knapsack", (0.9,))
        name, params = parse_assignment("hotness-threshold:0.25:rle")
        assert name == "hotness-threshold"
        assert params == (0.25, "rle")

    def test_unknown_policy_rejected(self):
        with pytest.raises(AssignmentError, match="unknown assignment"):
            parse_assignment("nope")

    def test_empty_spec_rejected(self):
        with pytest.raises(AssignmentError):
            parse_assignment("")

    def test_bad_params_rejected(self):
        with pytest.raises(AssignmentError, match="invalid parameters"):
            validate_assignment("knapsack:0")
        with pytest.raises(AssignmentError, match="invalid parameters"):
            validate_assignment("hotness-threshold:2.0")
        with pytest.raises(AssignmentError, match="invalid parameters"):
            validate_assignment("uniform:1:2:3")

    def test_nonfinite_budget_rejected_at_validation(self):
        # float("inf")/"nan" parse as numbers; they must fail cleanly
        # here, not as an OverflowError mid-run.
        for bad in ("knapsack:inf", "knapsack:nan"):
            with pytest.raises(AssignmentError,
                               match="invalid parameters"):
                validate_assignment(bad)

    def test_unknown_hot_codec_rejected_at_validation(self):
        # A typo'd codec must fail at spec validation, before the CLI
        # pays for a profiling run.
        with pytest.raises(AssignmentError, match="invalid parameters"):
            validate_assignment("hotness-threshold:0.25:bogus")

    def test_make_policy_records_spec(self):
        policy = make_policy("knapsack:0.5")
        assert policy.spec == "knapsack:0.5"
        assert policy.budget_fraction == 0.5

    def test_registry_in_catalog(self):
        assert "assignments" in api.list_components()
        assert set(available_assignments()) >= {
            "uniform", "hotness-threshold", "knapsack"
        }


class TestConfigIntegration:
    def test_default_is_uniform(self):
        assert SimulationConfig().assignment == "uniform"

    def test_unknown_assignment_rejected(self):
        with pytest.raises(ConfigError, match="unknown assignment"):
            SimulationConfig(assignment="bogus")

    def test_bad_parameter_rejected(self):
        with pytest.raises(ConfigError):
            SimulationConfig(assignment="knapsack:-1")

    def test_strategy_name_suffix(self):
        assert "knapsack" in SimulationConfig(
            assignment="knapsack"
        ).strategy_name
        assert "uniform" not in SimulationConfig().strategy_name

    def test_strategy_name_marks_profileless_assignments(self):
        from repro.cfg.profile import EdgeProfile

        static = SimulationConfig(assignment="knapsack")
        assert static.strategy_name.endswith("knapsack[static]")
        profiled = SimulationConfig(
            assignment="knapsack", profile=EdgeProfile()
        )
        assert "[static]" not in profiled.strategy_name


class TestContext:
    def test_units_cover_cfg(self, composite_cfg):
        context = AssignmentContext(composite_cfg, "shared-dict")
        blocks = sorted(
            b for unit in context.units for b in unit.blocks
        )
        assert blocks == sorted(
            block.block_id for block in composite_cfg.blocks
        )

    def test_function_granularity_groups_blocks(self, composite_cfg):
        context = AssignmentContext(
            composite_cfg, "shared-dict", granularity="function"
        )
        assert any(len(unit.blocks) > 1 for unit in context.units)
        unit_of, unit_blocks = unit_map(composite_cfg, "function")
        assert {u.unit_id for u in context.units} == set(unit_blocks)
        assert all(
            unit_of[b] == u.unit_id
            for u in context.units for b in u.blocks
        )

    def test_profiled_hotness(self, composite_cfg, composite_profile):
        context = AssignmentContext(
            composite_cfg, "shared-dict", profile=composite_profile
        )
        assert context.profiled
        hot = {u.unit_id: u.hotness for u in context.units}
        for block_id, count in composite_profile.block_counts.items():
            assert hot[block_id] == count

    def test_static_fallback_marks_loops_hot(self, composite_cfg):
        context = AssignmentContext(composite_cfg, "shared-dict")
        assert not context.profiled
        assert any(u.hotness > 0 for u in context.units)

    def test_payload_sizes_match_artifacts(self, composite_cfg):
        context = AssignmentContext(composite_cfg, "shared-dict")
        artifacts = compression_artifacts(composite_cfg, "shared-dict")
        for unit in context.units:
            expected = sum(
                len(artifacts.payloads[b]) for b in unit.blocks
            )
            assert context.unit_payload_size(
                unit.unit_id, "shared-dict"
            ) == expected

    def test_uniform_image_size_counts_model_overhead(
        self, composite_cfg
    ):
        context = AssignmentContext(composite_cfg, "shared-dict")
        artifacts = compression_artifacts(composite_cfg, "shared-dict")
        expected = sum(len(p) for p in artifacts.payloads) + int(
            artifacts.codec.model_overhead_bytes
        )
        assert context.uniform_image_size == expected


class TestPolicies:
    def test_uniform_assigns_base_everywhere(self, composite_cfg):
        config = SimulationConfig(codec="shared-dict")
        assignment = build_assignment(composite_cfg, config)
        assert set(assignment.unit_codecs.values()) == {"shared-dict"}
        assert assignment.summary() == {
            "shared-dict": len(assignment.unit_codecs)
        }

    def test_hotness_marks_hottest_units(
        self, composite_cfg, composite_profile
    ):
        config = SimulationConfig(
            codec="shared-dict", assignment="hotness-threshold:0.1",
            profile=composite_profile,
        )
        assignment = build_assignment(composite_cfg, config)
        hottest = max(
            composite_profile.block_counts,
            key=lambda b: composite_profile.block_counts[b],
        )
        assert assignment.unit_codecs[hottest] == UNCOMPRESSED

    def test_hotness_hot_codec_parameter(
        self, composite_cfg, composite_profile
    ):
        config = SimulationConfig(
            codec="shared-dict",
            assignment="hotness-threshold:0.1:rle",
            profile=composite_profile,
        )
        assignment = build_assignment(composite_cfg, config)
        hottest = max(
            composite_profile.block_counts,
            key=lambda b: composite_profile.block_counts[b],
        )
        assert assignment.unit_codecs[hottest] == "rle"

    def test_cold_units_never_store_inflating_payloads(
        self, composite_cfg, composite_profile
    ):
        context = AssignmentContext(
            composite_cfg, "shared-dict", profile=composite_profile
        )
        config = SimulationConfig(
            codec="shared-dict", assignment="hotness-threshold",
            profile=composite_profile,
        )
        assignment = build_assignment(composite_cfg, config)
        for unit in context.units:
            chosen = assignment.unit_codecs[unit.unit_id]
            if chosen != "shared-dict":
                continue
            assert context.unit_payload_size(
                unit.unit_id, "shared-dict"
            ) < unit.size_bytes

    def test_knapsack_respects_budget(
        self, composite_cfg, composite_profile
    ):
        context = AssignmentContext(
            composite_cfg, "shared-dict", profile=composite_profile
        )
        # The floor (per-unit min of base vs uncompressed) is the
        # smallest reachable image; budgets below it bottom out there.
        floor = context.image_size({
            u.unit_id: (
                UNCOMPRESSED
                if u.size_bytes <= context.unit_payload_size(
                    u.unit_id, "shared-dict"
                )
                else "shared-dict"
            )
            for u in context.units
        })
        for fraction in ("0.5", "1.0", "1.2"):
            config = SimulationConfig(
                codec="shared-dict",
                assignment=f"knapsack:{fraction}",
                profile=composite_profile,
            )
            assignment = build_assignment(composite_cfg, config)
            budget = round(
                float(fraction) * context.uniform_image_size
            )
            assert context.image_size(
                dict(assignment.unit_codecs)
            ) <= max(budget, floor)

    def test_knapsack_upgrades_hot_units(
        self, composite_cfg, composite_profile
    ):
        config = SimulationConfig(
            codec="shared-dict", assignment="knapsack",
            profile=composite_profile,
        )
        assignment = build_assignment(composite_cfg, config)
        assert UNCOMPRESSED in set(assignment.unit_codecs.values())

    def test_dp_refinement_beats_greedy_when_density_misleads(self):
        # Greedy by density takes the weight-3 item (density 10) and
        # can fit nothing else; DP finds the optimal {4, 4} split.
        candidates = [(30, 3, 0), (28, 4, 1), (28, 4, 2)]
        greedy = KnapsackAssignment._greedy(candidates, 8)
        refined = KnapsackAssignment._dp_refine(candidates, 8)
        assert sum(v for v, _, _ in greedy) == 58
        assert sum(v for v, _, _ in refined) == 58 or \
            sum(v for v, _, _ in refined) >= sum(
                v for v, _, _ in greedy
            )

    def test_dp_exact_on_small_instance(self):
        candidates = [(60, 10, 0), (100, 20, 1), (120, 30, 2)]
        refined = KnapsackAssignment._dp_refine(candidates, 50)
        assert sum(v for v, _, _ in refined) == 220

    def test_dp_skips_oversized_capacity(self):
        assert KnapsackAssignment._dp_refine([(1, 1, 0)], 10**6) is None


class TestBuildValidation:
    def test_incomplete_policy_rejected(self, composite_cfg):
        class Incomplete(AssignmentPolicy):
            def assign(self, context):
                return {}

        ASSIGNMENTS.add("test-incomplete", Incomplete)
        try:
            config = SimulationConfig(assignment="test-incomplete")
            with pytest.raises(AssignmentError, match="unassigned"):
                build_assignment(composite_cfg, config)
        finally:
            ASSIGNMENTS.remove("test-incomplete")

    def test_unknown_codec_rejected(self, composite_cfg):
        class BadCodec(AssignmentPolicy):
            def assign(self, context):
                return {
                    u.unit_id: "no-such-codec" for u in context.units
                }

        ASSIGNMENTS.add("test-bad-codec", BadCodec)
        try:
            config = SimulationConfig(assignment="test-bad-codec")
            with pytest.raises(AssignmentError, match="unknown codec"):
                build_assignment(composite_cfg, config)
        finally:
            ASSIGNMENTS.remove("test-bad-codec")


class TestMixedArtifacts:
    def test_payloads_dispatch_per_block(
        self, composite_cfg, composite_profile
    ):
        config = SimulationConfig(
            codec="shared-dict", assignment="hotness-threshold",
            profile=composite_profile,
        )
        assignment = build_assignment(composite_cfg, config)
        artifacts = assignment_artifacts(composite_cfg, assignment)
        per_codec = {
            name: compression_artifacts(composite_cfg, name)
            for name in assignment.codec_names()
        }
        for block in composite_cfg.blocks:
            chosen = assignment.block_codecs[block.block_id]
            assert artifacts.payloads[block.block_id] == \
                per_codec[chosen].payloads[block.block_id]
            assert artifacts.codec_map[block.block_id] is \
                per_codec[chosen].codec

    def test_memoized_per_assignment_digest(
        self, composite_cfg, composite_profile
    ):
        config = SimulationConfig(
            codec="shared-dict", assignment="knapsack",
            profile=composite_profile,
        )
        assignment = build_assignment(composite_cfg, config)
        first = assignment_artifacts(composite_cfg, assignment)
        again = assignment_artifacts(composite_cfg, assignment)
        assert first is again

    def test_digest_distinguishes_assignments(
        self, composite_cfg, composite_profile
    ):
        base = SimulationConfig(
            codec="shared-dict", assignment="knapsack",
            profile=composite_profile,
        )
        hot = base.replace(assignment="hotness-threshold")
        a = build_assignment(composite_cfg, base)
        b = build_assignment(composite_cfg, hot)
        assert a.digest != b.digest or a.block_codecs == b.block_codecs
