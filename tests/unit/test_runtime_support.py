"""Unit tests for events, metrics, and background-thread timelines."""

import pytest

from repro.runtime import (
    BackgroundWorker,
    Counters,
    EventKind,
    EventLog,
    FootprintTimeline,
)


class TestEventLog:
    def test_emit_and_query(self):
        log = EventLog()
        log.emit(0, EventKind.BLOCK_ENTER, 1)
        log.emit(5, EventKind.FAULT, 2)
        log.emit(9, EventKind.BLOCK_ENTER, 2)
        assert len(log) == 3
        assert log.block_sequence() == [1, 2]
        assert [e.block_id for e in log.of_kind(EventKind.FAULT)] == [2]
        assert len(log.for_block(2)) == 2

    def test_disabled_log_drops_events(self):
        log = EventLog(enabled=False)
        log.emit(0, EventKind.FAULT, 1)
        assert len(log) == 0

    def test_capacity_cap(self):
        log = EventLog(capacity=2)
        for i in range(5):
            log.emit(i, EventKind.BLOCK_ENTER, i)
        assert len(log) == 2
        assert log.dropped == 3

    def test_render(self):
        log = EventLog()
        log.emit(3, EventKind.STALL, 7, detail=12)
        text = log.render()
        assert "stall" in text and "B7" in text and "12" in text

    def test_render_limit(self):
        log = EventLog()
        for i in range(10):
            log.emit(i, EventKind.BLOCK_ENTER, i)
        text = log.render(limit=3)
        assert "7 more" in text


class TestFootprintTimeline:
    def test_peak(self):
        timeline = FootprintTimeline()
        timeline.record(0, 100)
        timeline.record(10, 300)
        timeline.record(20, 150)
        assert timeline.peak == 300

    def test_time_weighted_average(self):
        timeline = FootprintTimeline()
        timeline.record(0, 100)
        timeline.record(10, 200)
        # [0,10) at 100, [10,20) at 200 -> avg 150
        assert timeline.average(20) == pytest.approx(150.0)

    def test_same_cycle_overwrites(self):
        timeline = FootprintTimeline()
        timeline.record(5, 10)
        timeline.record(5, 30)
        assert timeline.samples == [(5, 30)]

    def test_out_of_order_rejected(self):
        timeline = FootprintTimeline()
        timeline.record(10, 1)
        with pytest.raises(ValueError, match="out of order"):
            timeline.record(5, 2)

    def test_empty_timeline(self):
        timeline = FootprintTimeline()
        assert timeline.peak == 0
        assert timeline.average() == 0.0

    def test_average_at_start_cycle(self):
        timeline = FootprintTimeline()
        timeline.record(10, 44)
        assert timeline.average(10) == 44.0


class TestBackgroundWorker:
    def test_idle_worker_starts_immediately(self):
        worker = BackgroundWorker("dec")
        job = worker.schedule(now=100, block_id=1, latency=50)
        assert job.started_at == 100
        assert job.completes_at == 150

    def test_busy_worker_queues_fifo(self):
        worker = BackgroundWorker("dec")
        worker.schedule(0, 1, 100)
        second = worker.schedule(10, 2, 50)
        assert second.started_at == 100
        assert second.completes_at == 150
        assert second.queue_delay == 90

    def test_one_job_per_block(self):
        worker = BackgroundWorker("dec")
        first = worker.schedule(0, 1, 100)
        duplicate = worker.schedule(5, 1, 100)
        assert duplicate is first

    def test_retire_completed(self):
        worker = BackgroundWorker("dec")
        worker.schedule(0, 1, 10)
        worker.schedule(0, 2, 10)
        done = worker.retire_completed(now=15)
        assert [job.block_id for job in done] == [1]
        assert worker.backlog() == 1

    def test_cancel_unstarted_job_refunds_fully(self):
        worker = BackgroundWorker("dec")
        worker.schedule(0, 1, 100)
        worker.schedule(0, 2, 100)  # queued behind, starts at 100
        worker.cancel(2, now=10)
        assert worker.busy_cycles == 100  # only job 1's work remains
        assert worker.free_at == 100

    def test_cancel_rechains_queue(self):
        worker = BackgroundWorker("dec")
        worker.schedule(0, 1, 100)
        worker.schedule(0, 2, 50)
        third = worker.schedule(0, 3, 50)
        assert third.completes_at == 200
        worker.cancel(2, now=10)
        # job 3 now starts right after job 1
        assert worker.completion_time(3) == 150

    def test_cancel_inflight_keeps_elapsed(self):
        worker = BackgroundWorker("dec")
        worker.schedule(0, 1, 100)
        worker.cancel(1, now=40)
        # 40 cycles were actually worked
        assert worker.busy_cycles == 40

    def test_cancel_unknown_block_is_noop(self):
        worker = BackgroundWorker("dec")
        assert worker.cancel(9, now=0) is None

    def test_is_pending(self):
        worker = BackgroundWorker("dec")
        worker.schedule(0, 1, 100)
        assert worker.is_pending(1, now=50)
        assert not worker.is_pending(1, now=100)

    def test_contention_charges_fraction(self):
        worker = BackgroundWorker("dec", contention=0.5)
        worker.schedule(0, 1, 100)
        assert worker.contention_cycles() == 50

    def test_invalid_contention_rejected(self):
        with pytest.raises(ValueError):
            BackgroundWorker("dec", contention=1.5)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            BackgroundWorker("dec").schedule(0, 1, -1)


class TestCounters:
    def test_prediction_accuracy(self):
        counters = Counters()
        assert counters.prediction_accuracy == 0.0
        counters.predictions = 4
        counters.correct_predictions = 3
        assert counters.prediction_accuracy == 0.75
