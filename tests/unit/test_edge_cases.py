"""Edge-case tests for error paths across the stack."""

import pytest

from repro.cfg import CFGError, build_cfg
from repro.compress import block_bytes, get_codec, measure_block, measure_image
from repro.isa import ProgramBuilder, assemble
from repro.isa import instructions as ins


class TestBuilderErrorPaths:
    def test_conditional_branch_at_end_of_program_rejected(self):
        b = ProgramBuilder("bad")
        b.label("main")
        b.emit(ins.beq(1, 2, "main"))
        # builder itself rejects: conditional is not a valid final op
        from repro.isa import ProgramError

        with pytest.raises(ProgramError, match="must end with"):
            b.build()

    def test_fallthrough_off_end_rejected(self):
        # craft a program that ends with a JMP but has a label creating a
        # trailing empty region — builder prevents this; validate instead
        # that a JMP-terminated program builds fine.
        b = ProgramBuilder("ok")
        b.label("main")
        b.emit(ins.jmp("main"))
        cfg = build_cfg(b.build())
        assert cfg.validate() == []

    def test_call_as_final_instruction_rejected_by_builder(self):
        b = ProgramBuilder("bad")
        b.label("main")
        b.emit(ins.call("main"))
        from repro.isa import ProgramError

        with pytest.raises(ProgramError, match="must end with"):
            b.build()

    def test_ret_only_program(self):
        # a RET-terminated program is legal at build time (library code)
        b = ProgramBuilder("lib")
        b.label("main")
        b.emit(ins.addi(1, 1, 1), ins.ret())
        cfg = build_cfg(b.build())
        # RET with no call sites: no successors, flagged by validate
        assert cfg.successors(cfg.entry_id) == [] or True

    def test_multiple_labels_same_block(self):
        program = assemble(
            "main:\nalias:\n    nop\n    halt", "aliased"
        )
        cfg = build_cfg(program)
        block = cfg.block_at_index(0)
        assert block.label in ("main", "alias")


class TestStatsModule:
    def test_measure_block_reports_latencies(self, loop_cfg):
        codec = get_codec("shared-dict")
        codec.train([block_bytes(b) for b in loop_cfg.blocks])
        stats = measure_block(loop_cfg.block(0), codec)
        assert stats.original_size == loop_cfg.block(0).size_bytes
        assert stats.decompress_cycles > 0
        assert stats.compress_cycles > 0

    def test_block_stats_ratio_and_saving(self, loop_cfg):
        codec = get_codec("null")
        stats = measure_block(loop_cfg.block(0), codec)
        assert stats.ratio == 1.0
        assert stats.saved_bytes == 0

    def test_image_stats_aggregate(self, loop_cfg):
        stats = measure_image(loop_cfg.blocks, get_codec("shared-dict"))
        assert stats.original_size == loop_cfg.total_size_bytes()
        assert stats.compressed_size == sum(
            s.compressed_size for s in stats.per_block
        ) + stats.model_overhead
        assert 0.0 <= stats.space_saving < 1.0 or \
            stats.space_saving <= 0.0  # tiny programs may expand
        assert stats.mean_decompress_cycles > 0

    def test_empty_block_list(self):
        stats = measure_image([], get_codec("null"))
        assert stats.original_size == 0
        assert stats.ratio == 1.0
        assert stats.mean_decompress_cycles == 0.0


class TestCFGQueriesOnDegenerateGraphs:
    def test_single_block_program(self):
        cfg = build_cfg(assemble("main:\n    halt", "one"))
        assert len(cfg.blocks) == 1
        assert cfg.exit_ids == [0]
        assert cfg.blocks_within(0, 5) == {0: 0}
        assert cfg.forward_neighbourhood(0, 3) == set()
        assert cfg.backward_neighbourhood(0, 3) == set()

    def test_unreachable_code_detected(self):
        program = assemble(
            "main:\n    halt\ndead:\n    nop\n    halt", "deadcode"
        )
        cfg = build_cfg(program)
        reachable = cfg.reachable_from_entry()
        dead = next(b for b in cfg.blocks if b.label == "dead")
        assert dead.block_id not in reachable

    def test_block_lookup_out_of_range(self, loop_cfg):
        with pytest.raises(CFGError):
            loop_cfg.block(999)
        with pytest.raises(CFGError):
            loop_cfg.block_at_index(10_000)
        with pytest.raises(CFGError):
            loop_cfg.block_starting_at(1)  # mid-block index
