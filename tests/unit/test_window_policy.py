"""Unit tests for the recency-window compression policy (E12 ablation)."""

import pytest

from repro.cfg import build_cfg
from repro.core import SimulationConfig
from repro.core.manager import CodeCompressionManager
from repro.strategies import RecencyWindowCompression
from repro.workloads import get_workload

_FAST = dict(trace_events=False, record_trace=True)


class FakeView:
    def __init__(self, resident):
        self.resident = set(resident)

    def resident_units(self):
        return set(self.resident)


class TestPolicyMechanics:
    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            RecencyWindowCompression(0)

    def test_oldest_evicted_beyond_window(self):
        policy = RecencyWindowCompression(2)
        policy.bind(FakeView(resident={1, 2, 3}))
        for unit in (1, 2, 3):
            policy.on_unit_enter(unit)
        expired = policy.on_edge(3, 4)
        assert expired == [1]
        assert policy.tracked == 2

    def test_reuse_refreshes_recency(self):
        policy = RecencyWindowCompression(2)
        policy.bind(FakeView(resident={1, 2, 3}))
        policy.on_unit_enter(1)
        policy.on_unit_enter(2)
        policy.on_unit_enter(1)  # 1 is fresh again
        policy.on_unit_enter(3)
        expired = policy.on_edge(3, 4)
        assert expired == [2]

    def test_destination_never_expired(self):
        policy = RecencyWindowCompression(1)
        policy.bind(FakeView(resident={1, 2}))
        policy.on_unit_enter(1)
        policy.on_unit_enter(2)
        # unit 1 is oldest, but it is the destination of this edge
        expired = policy.on_edge(2, 1)
        assert 1 not in expired

    def test_released_units_forget_slots(self):
        policy = RecencyWindowCompression(4)
        policy.bind(FakeView(resident={1}))
        policy.on_unit_enter(1)
        policy.on_unit_released(1)
        assert policy.tracked == 0

    def test_within_window_nothing_expires(self):
        policy = RecencyWindowCompression(8)
        policy.bind(FakeView(resident={1, 2, 3}))
        for unit in (1, 2, 3):
            policy.on_unit_enter(unit)
        assert policy.on_edge(3, 1) == []


class TestSystemIntegration:
    def test_transparent_under_window_policy(self):
        workload = get_workload("quicksort")
        cfg = build_cfg(workload.program)
        base = CodeCompressionManager(
            cfg, SimulationConfig(decompression="none", **_FAST)
        ).run()
        manager = CodeCompressionManager(
            cfg,
            SimulationConfig(decompression="ondemand", k_compress=1,
                             **_FAST),
            compression_policy=RecencyWindowCompression(4),
        )
        result = manager.run()
        assert workload.validate(manager.machine) == []
        assert result.registers == base.registers
        assert result.block_trace == base.block_trace

    def test_bigger_window_keeps_more_resident(self):
        workload = get_workload("fsm")
        cfg = build_cfg(workload.program)
        footprints = []
        for window in (2, 8, 32):
            result = CodeCompressionManager(
                cfg,
                SimulationConfig(decompression="ondemand", k_compress=1,
                                 trace_events=False, record_trace=False),
                compression_policy=RecencyWindowCompression(window),
            ).run()
            footprints.append(result.average_footprint)
        assert footprints == sorted(footprints)

    def test_decompression_override_also_injectable(self):
        from repro.strategies import OnDemandDecompression

        workload = get_workload("fib")
        cfg = build_cfg(workload.program)
        manager = CodeCompressionManager(
            cfg,
            SimulationConfig(decompression="pre-all",
                             trace_events=False, record_trace=False),
            decompression_policy=OnDemandDecompression(),
        )
        result = manager.run()
        # the override wins: no pre-decompressions happened
        assert result.counters.background_decompress_cycles == 0
