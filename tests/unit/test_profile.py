"""Unit tests for edge profiles."""

import pytest

from repro.cfg import EdgeProfile, profile_from_trace


class TestRecording:
    def test_record_edge_updates_both_tables(self):
        profile = EdgeProfile()
        profile.record_edge(0, 1)
        profile.record_edge(0, 1)
        assert profile.edge_count(0, 1) == 2
        assert profile.block_count(1) == 2

    def test_record_trace(self):
        profile = profile_from_trace([0, 1, 0, 1, 3])
        assert profile.edge_count(0, 1) == 2
        assert profile.edge_count(1, 0) == 1
        assert profile.edge_count(1, 3) == 1
        assert profile.block_count(0) == 2  # entry + one transition

    def test_empty_trace(self):
        profile = profile_from_trace([])
        assert profile.total_transitions == 0

    def test_total_transitions(self):
        profile = profile_from_trace([0, 1, 2, 0])
        assert profile.total_transitions == 3


class TestQueries:
    def test_most_likely_successor(self, loop_cfg):
        profile = EdgeProfile()
        loop_id = next(
            b.block_id for b in loop_cfg.blocks if b.label == "loop"
        )
        # the self edge is taken 9 times, the exit once
        for _ in range(9):
            profile.record_edge(loop_id, loop_id)
        exits = [
            s for s in loop_cfg.successors(loop_id) if s != loop_id
        ]
        profile.record_edge(loop_id, exits[0])
        assert profile.most_likely_successor(loop_cfg, loop_id) == loop_id

    def test_unprofiled_block_uses_uniform_smoothing(self, loop_cfg):
        profile = EdgeProfile()
        probs = profile.successor_probabilities(
            loop_cfg, loop_cfg.entry_id
        )
        assert probs
        assert sum(probs.values()) == pytest.approx(1.0)

    def test_probabilities_reflect_counts(self, loop_cfg):
        profile = EdgeProfile()
        loop_id = next(
            b.block_id for b in loop_cfg.blocks if b.label == "loop"
        )
        for _ in range(8):
            profile.record_edge(loop_id, loop_id)
        probs = profile.successor_probabilities(loop_cfg, loop_id)
        assert probs[loop_id] > 0.5

    def test_most_likely_path_follows_greedy_chain(self, loop_cfg):
        profile = EdgeProfile()
        loop_id = next(
            b.block_id for b in loop_cfg.blocks if b.label == "loop"
        )
        profile.record_edge(loop_cfg.entry_id, loop_id)
        profile.record_edge(loop_id, loop_id)
        path = profile.most_likely_path(loop_cfg, loop_cfg.entry_id, 3)
        assert path[0] == loop_id

    def test_path_stops_at_exit(self, loop_cfg):
        profile = EdgeProfile()
        exit_id = loop_cfg.exit_ids[0]
        assert profile.most_likely_path(loop_cfg, exit_id, 5) == []

    def test_merge_sums_counts(self):
        a = profile_from_trace([0, 1, 2])
        b = profile_from_trace([0, 1])
        merged = a.merge(b)
        assert merged.edge_count(0, 1) == 2
        assert merged.edge_count(1, 2) == 1
        # originals untouched
        assert a.edge_count(0, 1) == 1
