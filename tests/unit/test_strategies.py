"""Unit tests for the strategy layer: k-edge, predictors, pre-decompression,
budget."""

import pytest

from repro.cfg import EdgeProfile
from repro.strategies import (
    BudgetError,
    KEdgeCompression,
    LastSuccessorPredictor,
    MarkovPredictor,
    MemoryBudget,
    NeverRecompress,
    OnDemandDecompression,
    OnlineProfilePredictor,
    PreDecompressAll,
    PreDecompressSingle,
    StaticProfilePredictor,
    available_predictors,
    make_predictor,
)


class FakeView:
    """Minimal ManagerView for policy unit tests."""

    def __init__(self, cfg, resident=None):
        self.cfg = cfg
        self.profile = EdgeProfile()
        self.resident = set(resident or ())

    def unit_of(self, block_id):
        return block_id

    def unit_blocks(self, unit_id):
        return {unit_id}

    def resident_units(self):
        return set(self.resident)

    def is_unit_resident(self, unit_id):
        return unit_id in self.resident


class TestKEdge:
    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            KEdgeCompression(0)

    def test_counter_reaches_k_releases(self, loop_cfg):
        policy = KEdgeCompression(2)
        policy.bind(FakeView(loop_cfg, resident={0}))
        policy.on_unit_decompressed(0)
        policy.on_unit_enter(0)
        assert policy.on_edge(0, 1) == []      # counter 1
        assert policy.on_edge(1, 2) == [0]     # counter 2 == k

    def test_destination_exempt(self, loop_cfg):
        policy = KEdgeCompression(1)
        policy.bind(FakeView(loop_cfg, resident={0, 1}))
        policy.on_unit_enter(0)
        policy.on_unit_enter(1)
        expired = policy.on_edge(0, 1)
        assert 1 not in expired
        assert 0 in expired  # k=1: src expires immediately

    def test_enter_resets_counter(self, loop_cfg):
        policy = KEdgeCompression(2)
        view = FakeView(loop_cfg, resident={0})
        policy.bind(view)
        policy.on_unit_enter(0)
        policy.on_edge(0, 1)           # counter 1
        policy.on_unit_enter(0)        # re-executed: reset
        assert policy.on_edge(0, 1) == []
        assert policy.counter(0) == 1

    def test_released_unit_forgotten(self, loop_cfg):
        policy = KEdgeCompression(1)
        view = FakeView(loop_cfg, resident={0})
        policy.bind(view)
        policy.on_unit_enter(0)
        policy.on_edge(0, 1)
        policy.on_unit_released(0)
        assert policy.counter(0) is None

    def test_predecompressed_unit_counts_from_zero(self, loop_cfg):
        # a block decompressed ahead of use still ages out after k edges
        policy = KEdgeCompression(2)
        view = FakeView(loop_cfg, resident={3})
        policy.bind(view)
        policy.on_unit_decompressed(3)
        assert policy.on_edge(0, 1) == []
        assert policy.on_edge(1, 2) == [3]

    def test_never_recompress(self, loop_cfg):
        policy = NeverRecompress()
        policy.bind(FakeView(loop_cfg, resident={0, 1, 2}))
        policy.on_unit_enter(0)
        for _ in range(100):
            assert policy.on_edge(0, 1) == []


class TestPredictors:
    def test_registry_complete(self):
        assert set(available_predictors()) == {
            "static-profile", "online-profile", "last-successor", "markov"
        }

    def test_static_requires_profile(self):
        with pytest.raises(ValueError, match="profile"):
            make_predictor("static-profile")

    def test_unknown_predictor(self):
        with pytest.raises(KeyError):
            make_predictor("oracle")

    def test_static_profile_prediction(self, loop_cfg):
        profile = EdgeProfile()
        loop_id = next(
            b.block_id for b in loop_cfg.blocks if b.label == "loop"
        )
        for _ in range(5):
            profile.record_edge(loop_id, loop_id)
        predictor = StaticProfilePredictor(profile)
        predictor.bind(loop_cfg)
        assert predictor.predict(loop_id) == loop_id

    def test_online_profile_adapts(self, loop_cfg):
        predictor = OnlineProfilePredictor()
        predictor.bind(loop_cfg)
        loop_id = next(
            b.block_id for b in loop_cfg.blocks if b.label == "loop"
        )
        exits = [
            s for s in loop_cfg.successors(loop_id) if s != loop_id
        ]
        for _ in range(3):
            predictor.update(loop_id, exits[0])
        assert predictor.predict(loop_id) == exits[0]

    def test_last_successor_tracks_latest(self, loop_cfg):
        predictor = LastSuccessorPredictor()
        predictor.bind(loop_cfg)
        loop_id = next(
            b.block_id for b in loop_cfg.blocks if b.label == "loop"
        )
        exits = [
            s for s in loop_cfg.successors(loop_id) if s != loop_id
        ]
        predictor.update(loop_id, loop_id)
        assert predictor.predict(loop_id) == loop_id
        predictor.update(loop_id, exits[0])
        assert predictor.predict(loop_id) == exits[0]

    def test_last_successor_cold_start_uses_first_successor(
        self, loop_cfg
    ):
        predictor = LastSuccessorPredictor()
        predictor.bind(loop_cfg)
        assert predictor.predict(loop_cfg.entry_id) in \
            loop_cfg.successors(loop_cfg.entry_id)

    def test_predict_at_exit_is_none(self, loop_cfg):
        predictor = OnlineProfilePredictor()
        predictor.bind(loop_cfg)
        assert predictor.predict(loop_cfg.exit_ids[0]) is None

    def test_markov_uses_context(self, figure1_cfg):
        predictor = MarkovPredictor()
        predictor.bind(figure1_cfg)
        # teach: after (0 -> 1), next is 1; after (1 -> 1), next is 3
        predictor.update(0, 1)
        predictor.update(1, 1)
        predictor.update(1, 3)
        predictor.update(0, 1)  # context is now (0, 1)
        prediction = predictor.predict(1)
        assert prediction in figure1_cfg.successors(1)

    def test_predict_path_length_bounded(self, loop_cfg):
        predictor = OnlineProfilePredictor()
        predictor.bind(loop_cfg)
        path = predictor.predict_path(loop_cfg.entry_id, 3)
        assert len(path) <= 3


class TestPreDecompression:
    def test_ondemand_requests_nothing(self, loop_cfg):
        policy = OnDemandDecompression()
        policy.bind(FakeView(loop_cfg))
        assert policy.on_block_exit(0) == []
        assert not policy.uses_thread

    def test_pre_all_requests_neighbourhood(self, loop_cfg):
        policy = PreDecompressAll(2)
        policy.bind(FakeView(loop_cfg))
        targets = policy.on_block_exit(loop_cfg.entry_id)
        assert set(targets) == loop_cfg.forward_neighbourhood(
            loop_cfg.entry_id, 2
        )

    def test_pre_all_warms_entry_at_start(self, loop_cfg):
        policy = PreDecompressAll(1)
        policy.bind(FakeView(loop_cfg))
        warm = policy.on_program_start(loop_cfg.entry_id)
        assert loop_cfg.entry_id in warm

    def test_pre_all_invalid_k(self):
        with pytest.raises(ValueError):
            PreDecompressAll(0)

    def test_pre_single_picks_first_compressed_on_path(self, loop_cfg):
        predictor = OnlineProfilePredictor()
        policy = PreDecompressSingle(2, predictor)
        view = FakeView(loop_cfg, resident=set())
        policy.bind(view)
        loop_id = next(
            b.block_id for b in loop_cfg.blocks if b.label == "loop"
        )
        predictor.update(loop_cfg.entry_id, loop_id)
        predictor.update(loop_id, loop_id)
        targets = policy.on_block_exit(loop_cfg.entry_id)
        assert targets == [loop_id]
        assert policy.last_choice == loop_id

    def test_pre_single_skips_resident_blocks(self, loop_cfg):
        predictor = OnlineProfilePredictor()
        policy = PreDecompressSingle(1, predictor)
        loop_id = next(
            b.block_id for b in loop_cfg.blocks if b.label == "loop"
        )
        view = FakeView(loop_cfg, resident={loop_id})
        policy.bind(view)
        predictor.update(loop_cfg.entry_id, loop_id)
        assert policy.on_block_exit(loop_cfg.entry_id) == []
        assert policy.last_choice is None


class TestBudget:
    def _sizes(self):
        return {1: 40, 2: 40, 3: 40}.__getitem__

    def test_no_eviction_under_limit(self):
        budget = MemoryBudget(1000)
        assert budget.select_victims(
            needed_bytes=40, current_footprint=100,
            resident={1, 2}, protected=set(), size_of=self._sizes(),
        ) == []

    def test_lru_order(self):
        budget = MemoryBudget(120, policy="lru")
        for unit in (1, 2, 3):
            budget.on_unit_decompressed(unit)
        budget.on_unit_enter(1)  # 1 is most recent; 2 is LRU
        victims = budget.select_victims(
            needed_bytes=40, current_footprint=120,
            resident={1, 2, 3}, protected=set(), size_of=self._sizes(),
        )
        assert victims[0] == 2

    def test_fifo_order(self):
        budget = MemoryBudget(120, policy="fifo")
        for unit in (3, 1, 2):
            budget.on_unit_decompressed(unit)
        victims = budget.select_victims(
            needed_bytes=40, current_footprint=120,
            resident={1, 2, 3}, protected=set(), size_of=self._sizes(),
        )
        assert victims[0] == 3

    def test_largest_order(self):
        budget = MemoryBudget(120, policy="largest")
        sizes = {1: 10, 2: 99, 3: 20}.__getitem__
        victims = budget.select_victims(
            needed_bytes=40, current_footprint=120,
            resident={1, 2, 3}, protected=set(), size_of=sizes,
        )
        assert victims[0] == 2

    def test_protected_never_chosen(self):
        budget = MemoryBudget(100)
        for unit in (1, 2):
            budget.on_unit_decompressed(unit)
        victims = budget.select_victims(
            needed_bytes=40, current_footprint=100,
            resident={1, 2}, protected={1}, size_of=self._sizes(),
        )
        assert 1 not in victims

    def test_unreachable_budget_raises(self):
        budget = MemoryBudget(50)
        with pytest.raises(BudgetError):
            budget.select_victims(
                needed_bytes=40, current_footprint=100,
                resident={1}, protected={1}, size_of=self._sizes(),
            )

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MemoryBudget(0)
        with pytest.raises(ValueError):
            MemoryBudget(100, policy="random")

    def test_eviction_stops_once_enough_freed(self):
        budget = MemoryBudget(120, policy="lru")
        for unit in (1, 2, 3):
            budget.on_unit_decompressed(unit)
        victims = budget.select_victims(
            needed_bytes=40, current_footprint=120,
            resident={1, 2, 3}, protected=set(), size_of=self._sizes(),
        )
        assert len(victims) == 1
