"""Unit tests for the service job layer (no HTTP involved).

Covers the pieces the HTTP integration suite builds on: job-key
semantics (what dedups and what must not), submission/dedup/rollback
on a full queue, the resumable journal, and snapshot shapes.
"""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro import api
from repro.service import JobManager, QueueFullError, job_key
from repro.service.jobs import JOURNAL_VERSION


def _spec_dict(**overrides):
    fields = {
        "name": "unit-service",
        "workloads": ["fib"],
        "base": {"codec": "shared-dict", "decompression": "ondemand"},
        "axes": {"grid": {"k_compress": [1, "inf"]}},
        "engine": "trace",
    }
    fields.update(overrides)
    return fields


def _spec(**overrides):
    return api.ExperimentSpec.from_dict(_spec_dict(**overrides))


def _wait_state(job, state, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if job.state == state:
            return
        if job.state == "failed" and state != "failed":
            raise AssertionError(f"job failed: {job.error}")
        time.sleep(0.01)
    raise AssertionError(
        f"job stuck in {job.state!r}, wanted {state!r}"
    )


class TestJobKey:
    def test_stable_across_equal_specs(self):
        assert job_key(_spec()) == job_key(_spec())

    def test_execution_fields_do_not_affect_the_key(self):
        base = job_key(_spec())
        assert job_key(_spec(executor="parallel", jobs=4)) == base
        assert job_key(_spec(store="/elsewhere")) == base

    def test_result_affecting_fields_change_the_key(self):
        base = job_key(_spec())
        assert job_key(_spec(name="other")) != base
        assert job_key(_spec(workloads=["gcd"])) != base
        assert job_key(_spec(engine="machine")) != base
        assert job_key(
            _spec(axes={"grid": {"k_compress": [1, 2]}})
        ) != base
        assert job_key(_spec(max_blocks=5)) != base

    def test_store_salt_is_folded_in(self, monkeypatch):
        base = job_key(_spec())
        monkeypatch.setenv("REPRO_STORE_SALT", "tenant-b")
        assert job_key(_spec()) != base


class TestSubmitAndDedup:
    def test_submit_runs_to_done_and_dedups(self, tmp_path):
        manager = JobManager(store=str(tmp_path), workers=1)
        try:
            job, deduped = manager.submit(_spec_dict())
            assert not deduped
            _wait_state(job, "done")
            assert job.progress["done"] == job.progress["total"] == 2
            again, deduped = manager.submit(_spec_dict())
            assert deduped and again is job
            text = manager.job_result(job)
            assert len(json.loads(text)["cells"]) == 2
        finally:
            manager.shutdown()

    def test_dict_and_spec_submissions_share_a_key(self, tmp_path):
        manager = JobManager(store=str(tmp_path), workers=1)
        try:
            job, _ = manager.submit(_spec_dict())
            _wait_state(job, "done")
            again, deduped = manager.submit(_spec())
            assert deduped and again is job
        finally:
            manager.shutdown()

    def test_done_job_with_error_rows_never_dedups(self, tmp_path):
        manager = JobManager(store=str(tmp_path), workers=1)
        try:
            job, _ = manager.submit(_spec_dict())
            _wait_state(job, "done")
            # Forge an error row: the next identical submission must
            # get a fresh job, mirroring errors-are-never-cached.
            job.error_rows.append({"cell": 0, "error": "boom"})
            again, deduped = manager.submit(_spec_dict())
            assert not deduped and again is not job
            _wait_state(again, "done")
            assert not again.error_rows
        finally:
            manager.shutdown()

    def test_full_queue_rejects_and_rolls_back(
        self, tmp_path, monkeypatch
    ):
        gate = threading.Event()
        picked_up = threading.Event()
        real_execute = JobManager._execute

        def gated_execute(self, job):
            picked_up.set()
            gate.wait(60.0)
            real_execute(self, job)

        monkeypatch.setattr(JobManager, "_execute", gated_execute)
        manager = JobManager(
            store=str(tmp_path), workers=1, queue_size=1
        )
        try:
            running, _ = manager.submit(_spec_dict(name="a"))
            assert picked_up.wait(30.0)  # worker parked on gate
            queued, _ = manager.submit(_spec_dict(name="b"))
            with pytest.raises(QueueFullError):
                manager.submit(_spec_dict(name="c"))
            # Rollback: "c" left no trace — no journal entry, and a
            # later submit gets a fresh (non-deduped) job.
            entries = os.listdir(manager.journal_dir)
            assert len(entries) == 2
            gate.set()
            _wait_state(running, "done")
            _wait_state(queued, "done")
            retry, deduped = manager.submit(_spec_dict(name="c"))
            assert not deduped
            _wait_state(retry, "done")
        finally:
            gate.set()
            manager.shutdown()


class TestJournal:
    def test_done_jobs_rejoin_the_dedup_index_after_reboot(
        self, tmp_path
    ):
        manager = JobManager(store=str(tmp_path), workers=1)
        job, _ = manager.submit(_spec_dict())
        _wait_state(job, "done")
        result = manager.job_result(job)
        manager.shutdown()

        reborn = JobManager(store=str(tmp_path), workers=1)
        try:
            again, deduped = reborn.submit(_spec_dict())
            assert deduped
            assert again.id == job.id
            assert again.state == "done"
            assert reborn.job_result(again) == result
        finally:
            reborn.shutdown()

    def test_queued_journal_entries_run_on_the_next_boot(
        self, tmp_path
    ):
        # A manager that died before running its queue: model it by
        # writing the journal entry a dead manager would have left.
        dead = JobManager(store=str(tmp_path), workers=1, resume=False)
        dead.shutdown()
        spec = _spec()
        entry = {
            "version": JOURNAL_VERSION,
            "id": "j9-deadbeef",
            "seq": 9,
            "key": job_key(spec),
            "state": "queued",
            "spec": spec.to_dict(),
            "created": 0.0,
            "finished": None,
            "progress": {},
            "error_rows": [],
            "error": None,
        }
        os.makedirs(dead.journal_dir, exist_ok=True)
        with open(os.path.join(dead.journal_dir, "j9-deadbeef.json"),
                  "w", encoding="utf-8") as handle:
            json.dump(entry, handle)

        manager = JobManager(store=str(tmp_path), workers=1)
        try:
            job = manager.get("j9-deadbeef")
            assert job is not None
            _wait_state(job, "done")
            # Resumed seq numbering continues past the journal's.
            fresh, _ = manager.submit(_spec_dict(name="later"))
            assert fresh.seq > 9
        finally:
            manager.shutdown()

    def test_unloadable_spec_entries_are_skipped_not_fatal(
        self, tmp_path
    ):
        dead = JobManager(store=str(tmp_path), workers=1, resume=False)
        dead.shutdown()
        os.makedirs(dead.journal_dir, exist_ok=True)
        with open(os.path.join(dead.journal_dir, "j1-bad.json"), "w",
                  encoding="utf-8") as handle:
            json.dump({
                "version": JOURNAL_VERSION, "id": "j1-bad", "seq": 1,
                "key": "x", "state": "queued", "created": 0.0,
                "spec": {"workloads": ["no-such-workload"]},
            }, handle)
        manager = JobManager(store=str(tmp_path), workers=1)
        try:
            assert manager.get("j1-bad") is None
            job, _ = manager.submit(_spec_dict())
            _wait_state(job, "done")
        finally:
            manager.shutdown()

    def test_no_resume_ignores_the_journal(self, tmp_path):
        manager = JobManager(store=str(tmp_path), workers=1)
        job, _ = manager.submit(_spec_dict())
        _wait_state(job, "done")
        manager.shutdown()
        fresh = JobManager(
            store=str(tmp_path), workers=1, resume=False
        )
        try:
            assert fresh.get(job.id) is None
            # The cell/job stores still dedup the actual work.
            again, deduped = fresh.submit(_spec_dict())
            assert not deduped
            _wait_state(again, "done")
            assert again.progress["hits"] == again.progress["total"]
        finally:
            fresh.shutdown()


class TestSnapshots:
    def test_snapshot_shape(self, tmp_path):
        manager = JobManager(store=str(tmp_path), workers=1)
        try:
            job, _ = manager.submit(_spec_dict())
            _wait_state(job, "done")
            snapshot = job.snapshot()
            assert set(snapshot) == {
                "id", "key", "state", "deduped", "created", "started",
                "finished", "progress", "error_rows", "error",
                "phases",
            }
            assert set(snapshot["phases"]) == {
                "execute", "stall", "background",
            }
            assert snapshot["phases"]["execute"] > 0
            assert set(snapshot["progress"]) == {
                "total", "done", "hits", "computed", "shared",
                "errors", "retried",
            }
            assert snapshot["state"] == "done"
            assert snapshot["error"] is None
            events = job.events_since(0)
            assert len(events) == snapshot["progress"]["total"]
            assert [e["seq"] for e in events] == [0, 1]
            assert job.events_since(1) == events[1:]
        finally:
            manager.shutdown()

    def test_job_counts_and_queue_depth(self, tmp_path):
        manager = JobManager(store=str(tmp_path), workers=1)
        try:
            job, _ = manager.submit(_spec_dict())
            _wait_state(job, "done")
            counts = manager.job_counts()
            assert counts["done"] == 1
            assert counts["failed"] == 0
            assert manager.queue_depth == 0
        finally:
            manager.shutdown()
