"""Unit tests for :mod:`repro.obs` — tracer, spans, chrome, prometheus."""

import json
import threading

import pytest

from repro import api
from repro.obs import (
    NULL_TRACER,
    STALL_KINDS,
    SpanRecorder,
    SpanTracer,
    TraceSink,
    chrome_trace,
    chrome_trace_json,
    current_recorder,
    current_tracer,
    render_prometheus,
    span,
    span_event,
    span_scope,
    tracing_scope,
    validate_exposition,
)
from repro.obs.chrome import EXECUTION_TRACK, execution_track_events


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        # Every hook is a no-op on the null object.
        NULL_TRACER.stall(0, 5, "decompress", True)
        NULL_TRACER.worker_job("decompression", 1, 0, 0, 10)
        NULL_TRACER.worker_cancel(3, "decompression", 1)
        NULL_TRACER.fill(3, 1, 4)
        NULL_TRACER.release(9, 1, "evict", 2)
        NULL_TRACER.decode(0, "huffman", 12)
        NULL_TRACER.close(100, 150)

    def test_unarmed_ambient_tracer_is_the_null_object(self):
        assert current_tracer("anything") is NULL_TRACER


class TestSpanTracerArithmetic:
    """Hand-fed events with hand-computable totals."""

    def _traced(self):
        tracer = SpanTracer("hand")
        tracer.stall(10, 7, "decompress", True)
        tracer.stall(30, 5, "patch", False)
        tracer.stall(50, 3, "decompress", True)
        tracer.stall(60, 2, "mem", True)
        tracer.stall(70, 4, "contention", False)
        tracer.close(execution_cycles=100, total_cycles=121)
        return tracer

    def test_phases_are_exact(self):
        phases = self._traced().phases()
        assert phases == {
            "execute": 100,
            "stall_decompress": 10,
            "stall_patch": 5,
            "stall_mem": 2,
            "stall_contention": 4,
        }

    def test_phase_sum_equals_total_cycles(self):
        tracer = self._traced()
        assert sum(tracer.phases().values()) == 121
        assert tracer.stall_total() == 21

    def test_stall_event_counts_by_kind(self):
        tracer = self._traced()
        assert tracer.stall_events == {
            "decompress": 2, "patch": 1, "mem": 1, "contention": 1,
        }

    def test_every_stall_kind_has_a_phase(self):
        phases = SpanTracer("empty").phases()
        for kind in STALL_KINDS:
            assert f"stall_{kind}" in phases

    def test_span_cap_drops_spans_not_cycles(self):
        tracer = SpanTracer("capped", span_cap=2)
        for at in range(5):
            tracer.stall(at * 10, 3, "decompress", True)
        tracer.close(50, 65)
        assert len(tracer.stall_spans) == 2
        assert tracer.dropped_spans > 0
        # The aggregate accounting never drops.
        assert tracer.phases()["stall_decompress"] == 15


class TestTracingScope:
    def test_scope_arms_and_restores(self):
        sink = TraceSink()
        with tracing_scope(sink):
            tracer = current_tracer("prog")
            assert tracer.enabled
            tracer.stall(0, 5, "decompress", True)
            tracer.close(10, 15)
        assert current_tracer("prog") is NULL_TRACER
        assert sink.phases()["stall_decompress"] == 5

    def test_one_tracer_per_run_all_registered_on_sink(self):
        sink = TraceSink()
        with tracing_scope(sink):
            first = current_tracer("a")
            second = current_tracer("b")
        assert first is not second
        assert sink.tracers == [first, second]


class TestChromeTrace:
    def _tracer(self):
        _, tracer = api.run_traced(
            "fib", api.SimulationConfig(
                codec="shared-dict", decompression="ondemand"
            ),
        )
        return tracer

    def test_execution_track_gap_fill_sums_to_total(self):
        tracer = self._tracer()
        events = [
            e for e in execution_track_events(tracer)
            if e.get("ph") == "X"
        ]
        assert all(e["tid"] == EXECUTION_TRACK for e in events)
        assert sum(e["dur"] for e in events) == tracer.total_cycles

    def test_document_parses_and_carries_phases(self):
        tracer = self._tracer()
        doc = json.loads(chrome_trace_json(tracer))
        assert doc["traceEvents"]
        assert doc["metadata"]["phases"] == tracer.phases()
        kinds = {e["ph"] for e in doc["traceEvents"]}
        assert "X" in kinds and "M" in kinds

    def test_trace_label_overrides_program(self):
        tracer = self._tracer()
        doc = chrome_trace(tracer, label="custom")
        names = [
            e["args"]["name"] for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        ]
        assert names == ["custom"]


class TestSpanRecorder:
    def test_unarmed_is_a_noop(self):
        assert current_recorder() is None
        with span("nothing", cat="x"):
            pass
        span_event("nothing.happened")

    def test_spans_record_and_export(self):
        recorder = SpanRecorder()
        with span_scope(recorder):
            with span("work", cat="compute", cells=3):
                span_event("milestone", cat="mark")
        cats = recorder.by_category()
        assert cats["compute"]["count"] == 1
        doc = recorder.to_chrome()
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"work", "milestone"} <= names
        json.dumps(doc)  # serialisable

    def test_scope_restores_previous_recorder(self):
        outer = SpanRecorder()
        inner = SpanRecorder()
        with span_scope(outer):
            with span_scope(inner):
                assert current_recorder() is inner
            assert current_recorder() is outer
        assert current_recorder() is None

    def test_cap_drops_excess_spans(self):
        recorder = SpanRecorder(cap=3)
        with span_scope(recorder):
            for i in range(10):
                span_event(f"e{i}")
        assert len(recorder.spans) == 3
        assert recorder.dropped == 7


def _payload():
    histogram = {
        "count": 4,
        "total_ms": 20.0,
        "mean_ms": 5.0,
        "max_ms": 11.0,
        "p50_ms": 1.5,
        "p95_ms": 10.7,
        "p99_ms": 10.94,
        "buckets_ms": {
            "<=1": 1, "<=2": 1, "<=5": 0, "<=10": 0, "<=25": 2,
            ">25": 0,
        },
    }
    return {
        "service": {
            "uptime_s": 12.5,
            "requests": {
                "POST /jobs": histogram,
                "GET /jobs/{id}": histogram,
            },
            "responses": {"200": 3, "202": 1},
        },
        "queue_depth": 2,
        "jobs": {"queued": 2, "running": 1, "done": 3, "failed": 0},
        "store": {
            "root": "/tmp/s", "format": 1, "cells": 7,
            "blob_bytes": 1234, "hits": 5, "misses": 2,
        },
    }


class TestPrometheus:
    def test_render_validates(self):
        text = render_prometheus(_payload())
        checked = validate_exposition(text)
        assert checked["metrics"] >= 6
        assert checked["samples"] >= 20

    def test_expected_families_present(self):
        text = render_prometheus(_payload())
        for family in (
            "repro_uptime_seconds", "repro_queue_depth", "repro_jobs",
            "repro_http_responses_total", "repro_http_requests_total",
            "repro_http_request_duration_ms_bucket",
            "repro_http_request_duration_ms_sum",
            "repro_http_request_duration_ms_count",
            "repro_store_cells",
        ):
            assert family in text, family
        # Non-numeric store fields never become gauges.
        assert "repro_store_root" not in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = render_prometheus(_payload())
        lines = [
            line for line in text.splitlines()
            if line.startswith(
                "repro_http_request_duration_ms_bucket"
            ) and 'endpoint="POST /jobs"' in line
        ]
        values = [float(line.rsplit(" ", 1)[1]) for line in lines]
        assert values == sorted(values)
        assert 'le="+Inf"' in lines[-1]
        assert values[-1] == 4  # == _count

    def test_braced_label_values_validate(self):
        # "GET /jobs/{id}" puts '{' '}' inside a label value — legal.
        text = render_prometheus(_payload())
        assert 'endpoint="GET /jobs/{id}"' in text
        validate_exposition(text)

    @pytest.mark.parametrize("bad, message", [
        ("repro_x{oops 1\n", "malformed"),
        ("repro_x 1\n", "no preceding"),
        ("# TYPE repro_x teapot\nrepro_x 1\n", "bad TYPE"),
        ("# TYPE repro_x gauge\nrepro_x notanumber\n", "non-numeric"),
    ])
    def test_validator_rejects(self, bad, message):
        with pytest.raises(ValueError, match=message):
            validate_exposition(bad)

    def test_validator_rejects_non_cumulative_histogram(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_count 3\n"
        )
        with pytest.raises(ValueError, match="not cumulative"):
            validate_exposition(text)

    def test_validator_rejects_inf_count_mismatch(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 1\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_count 4\n"
        )
        with pytest.raises(ValueError, match="_count"):
            validate_exposition(text)


class TestAmbientThreadSafety:
    def test_sink_collects_from_many_threads(self):
        sink = TraceSink(keep_spans=False)
        with tracing_scope(sink):
            def work(index):
                tracer = current_tracer(f"p{index}")
                for _ in range(100):
                    tracer.stall(0, 1, "decompress", True)
            threads = [
                threading.Thread(target=work, args=(i,))
                for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert sink.phases()["stall_decompress"] == 800
