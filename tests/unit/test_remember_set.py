"""Unit tests for remember sets (branch-patch tracking, paper Section 5)."""

from repro.memory import BranchSite, RememberSets


class TestRememberSets:
    def test_add_and_query(self):
        rs = RememberSets()
        site = BranchSite(0, 3)
        rs.add_reference(1, site)
        assert rs.references_to(1) == {site}
        assert rs.target_of(site) == 1
        assert rs.points_to(site, 1)

    def test_site_moves_between_targets(self):
        # a branch instruction holds one address: re-patching it to a new
        # target must remove it from the old target's set
        rs = RememberSets()
        site = BranchSite(0, 3)
        rs.add_reference(1, site)
        rs.add_reference(2, site)
        assert rs.references_to(1) == set()
        assert rs.references_to(2) == {site}
        assert rs.validate() == []

    def test_repatch_same_target_is_idempotent(self):
        rs = RememberSets()
        site = BranchSite(0, 3)
        rs.add_reference(1, site)
        patches_before = rs.total_patches
        rs.add_reference(1, site)
        assert rs.total_patches == patches_before

    def test_drop_target_returns_sites_sorted(self):
        rs = RememberSets()
        rs.add_reference(5, BranchSite(2, 0))
        rs.add_reference(5, BranchSite(1, 4))
        dropped = rs.drop_target(5)
        assert dropped == [BranchSite(1, 4), BranchSite(2, 0)]
        assert rs.references_to(5) == set()
        assert rs.tracked_sites == 0

    def test_drop_target_counts_patches(self):
        rs = RememberSets()
        rs.add_reference(5, BranchSite(2, 0))
        before = rs.total_patches
        rs.drop_target(5)
        assert rs.total_patches == before + 1

    def test_drop_sites_in_block(self):
        # deleting block 2's decompressed copy destroys the branch sites
        # living inside it — they need no patching
        rs = RememberSets()
        rs.add_reference(5, BranchSite(2, 0))
        rs.add_reference(6, BranchSite(2, 3))
        rs.add_reference(5, BranchSite(3, 0))
        removed = rs.drop_sites_in_block(2)
        assert removed == 2
        assert rs.references_to(5) == {BranchSite(3, 0)}
        assert rs.validate() == []

    def test_drop_unknown_target_is_empty(self):
        rs = RememberSets()
        assert rs.drop_target(42) == []

    def test_validate_detects_consistency(self):
        rs = RememberSets()
        for target in range(4):
            for block in range(3):
                rs.add_reference(target, BranchSite(block, target))
        assert rs.validate() == []
