"""Unit tests for the ResidencySubsystem.

Focus: budget eviction racing an in-flight pre-decompression.  An
evicted unit whose background decompression job is still pending must be
cancelled cleanly (unperformed work refunded, queue re-chained) and must
settle ``wasted_decompressions`` exactly once — never twice, however the
release happens.
"""

import pytest

from repro.cfg import build_cfg
from repro.core import SimulationConfig, TimingModel
from repro.core.residency import ResidencySubsystem
from repro.isa import assemble
from repro.runtime import EventKind
from repro.runtime.events import EventLog
from repro.runtime.metrics import Counters

_FAST = dict(trace_events=False, record_trace=False)


@pytest.fixture
def straight_cfg():
    return build_cfg(
        assemble(
            """
main:
    li   r1, 1
    jmp  b
b:
    addi r1, r1, 1
    jmp  c
c:
    addi r1, r1, 1
    halt
""",
            "straight",
        )
    )


def _subsystem(cfg, **config_kwargs):
    config = SimulationConfig(
        decompression="pre-all", k_compress=None, k_decompress=2,
        **config_kwargs, **_FAST,
    )
    counters = Counters()
    timing = TimingModel(config, counters)
    residency = ResidencySubsystem(
        cfg, config, timing, counters, EventLog(enabled=False)
    )
    return residency, timing, counters


class TestEvictionVsInFlightPredecompression:
    def test_eviction_cancels_pending_job(self, straight_cfg):
        residency, timing, counters = _subsystem(straight_cfg)
        residency.schedule_predecompression(0, protected=set())
        assert residency.is_unit_resident(0)
        assert timing.decompress_worker.backlog() == 1

        residency.release_unit(0, EventKind.EVICT)
        assert not residency.is_unit_resident(0)
        assert timing.decompress_worker.backlog() == 0
        assert timing.decompress_worker.jobs_cancelled == 1
        # The job never started (now is still 0): full refund.
        assert timing.decompress_worker.busy_cycles == 0

    def test_unused_eviction_counts_wasted_exactly_once(
        self, straight_cfg
    ):
        residency, timing, counters = _subsystem(straight_cfg)
        residency.schedule_predecompression(0, protected=set())
        residency.release_unit(0, EventKind.EVICT)
        assert counters.wasted_decompressions == 1

        # A second (buggy/duplicate) release of the same unit must not
        # double-count: the used-flag was popped on the first release.
        residency.release_unit(0, EventKind.EVICT)
        assert counters.wasted_decompressions == 1

    def test_used_unit_is_never_wasted(self, straight_cfg):
        residency, timing, counters = _subsystem(straight_cfg)
        residency.schedule_predecompression(0, protected=set())
        residency.mark_used(0)
        residency.release_unit(0, EventKind.EVICT)
        assert counters.wasted_decompressions == 0

    def test_mid_flight_cancellation_refunds_remainder_only(
        self, straight_cfg
    ):
        residency, timing, counters = _subsystem(straight_cfg)
        residency.schedule_predecompression(0, protected=set())
        job = timing.decompress_worker.pending_jobs()[0]
        assert job.latency > 1

        # Let the job run for one cycle, then evict: the worker keeps
        # only the elapsed service time.
        timing.now = job.started_at + 1
        residency.release_unit(0, EventKind.EVICT)
        assert timing.decompress_worker.busy_cycles == 1

    def test_budget_eviction_of_inflight_unit(self, straight_cfg):
        size = max(
            sum(
                straight_cfg.block(b).size_bytes
                for b in (unit_blocks)
            )
            for unit_blocks in ([0], [1], [2])
        )
        compressed = ResidencySubsystem(
            straight_cfg,
            SimulationConfig(decompression="pre-all", k_compress=None,
                             **_FAST),
            TimingModel(SimulationConfig(**_FAST), Counters()),
            Counters(),
            EventLog(enabled=False),
        ).image.compressed_image_size
        # Room for exactly one decompressed unit above the image.
        residency, timing, counters = _subsystem(
            straight_cfg, memory_budget=compressed + size,
        )
        residency.schedule_predecompression(0, protected=set())
        assert timing.decompress_worker.backlog() == 1

        # Scheduling the next unit must evict unit 0 — whose job is
        # still in flight — cleanly, then admit unit 1.
        residency.schedule_predecompression(1, protected=set())
        assert not residency.is_unit_resident(0)
        assert residency.is_unit_resident(1)
        assert counters.evictions == 1
        assert counters.wasted_decompressions == 1
        assert timing.decompress_worker.jobs_cancelled == 1
        assert timing.decompress_worker.backlog() == 1

    def test_evicted_unit_can_be_rescheduled(self, straight_cfg):
        residency, timing, counters = _subsystem(straight_cfg)
        residency.schedule_predecompression(0, protected=set())
        residency.release_unit(0, EventKind.EVICT)
        residency.schedule_predecompression(0, protected=set())
        assert residency.is_unit_resident(0)
        assert counters.decompressions == 2
        assert timing.decompress_worker.backlog() == 1


class TestResidencyGeometry:
    def test_fill_cycles_equal_decompress_latency_under_flat(
        self, straight_cfg
    ):
        residency, _, _ = _subsystem(straight_cfg)
        for unit in (0, 1, 2):
            assert residency.unit_fill_cycles(unit) == \
                residency.unit_decompress_latency(unit)

    def test_fill_cycles_add_bus_cost_under_spm_front(
        self, straight_cfg
    ):
        residency, _, _ = _subsystem(
            straight_cfg, hierarchy="spm-front"
        )
        for unit in (0, 1, 2):
            assert residency.unit_fill_cycles(unit) > \
                residency.unit_decompress_latency(unit)

    def test_site_cache_returns_same_object(self, straight_cfg):
        residency, _, _ = _subsystem(straight_cfg)
        assert residency.site_for(0) is residency.site_for(0)
