"""Unit tests for CodeCompressionManager internals.

The integration suite exercises the manager end to end; these tests pin
down the fine-grained accounting rules: fault cost arithmetic, patch
faults vs. full faults, prefetch shedding, the ManagerView protocol, and
trace capping.
"""

import pytest

from repro.cfg import build_cfg
from repro.core import SimulationConfig
from repro.core.manager import CodeCompressionManager
from repro.isa import assemble
from repro.runtime import EventKind
from repro.workloads import get_workload

_FAST = dict(trace_events=False, record_trace=False)


@pytest.fixture
def straight_cfg():
    # Three straight-line blocks, each entered exactly once.
    return build_cfg(
        assemble(
            """
main:
    li   r1, 1
    jmp  b
b:
    addi r1, r1, 1
    jmp  c
c:
    addi r1, r1, 1
    halt
""",
            "straight",
        )
    )


class TestFaultAccounting:
    def test_fault_cost_is_handler_plus_latency(self, straight_cfg):
        manager = CodeCompressionManager(
            straight_cfg,
            SimulationConfig(decompression="ondemand", k_compress=None,
                             fault_cycles=50, trace_events=True),
        )
        result = manager.run()
        # every block faults exactly once; stalls = 3 * (50 + latency_i)
        expected = sum(
            50 + manager._unit_decompress_latency(manager.unit_of(b))
            for b in range(3)
        )
        assert result.counters.stall_cycles == expected
        assert result.counters.faults == 3

    def test_zero_fault_cycles_supported(self, straight_cfg):
        manager = CodeCompressionManager(
            straight_cfg,
            SimulationConfig(decompression="ondemand", k_compress=None,
                             fault_cycles=0, **_FAST),
        )
        result = manager.run()
        expected = sum(
            manager._unit_decompress_latency(manager.unit_of(b))
            for b in range(3)
        )
        assert result.counters.stall_cycles == expected

    def test_patch_fault_cheaper_than_full_fault(self, loop_cfg):
        # the loop block re-enters main's successor pattern: compare a
        # full fault (decompression) against a patch-only fault
        manager = CodeCompressionManager(
            loop_cfg,
            SimulationConfig(decompression="ondemand", k_compress=None,
                             fault_cycles=50, trace_events=True),
        )
        result = manager.run()
        # faults include patch-only re-entries; decompressions happen
        # exactly once per touched block
        assert result.counters.decompressions == \
            len({b for b in manager.block_trace})
        assert result.counters.faults >= result.counters.decompressions

    def test_resident_patched_reentry_is_free(self):
        # self-loop: after the first iteration the back edge is patched,
        # so the remaining iterations cost zero extra cycles
        cfg = build_cfg(
            assemble(
                """
main:
    li r1, 50
loop:
    subi r1, r1, 1
    bne r1, r0, loop
    halt
""",
                "selfloop",
            )
        )
        manager = CodeCompressionManager(
            cfg,
            SimulationConfig(decompression="ondemand", k_compress=None,
                             trace_events=True),
        )
        result = manager.run()
        loop_id = next(
            b.block_id for b in cfg.blocks if b.label == "loop"
        )
        loop_faults = [
            e for e in manager.log.of_kind(EventKind.FAULT)
            if e.block_id == loop_id
        ]
        loop_patches = [
            e for e in manager.log.of_kind(EventKind.PATCH)
            if e.block_id == loop_id
        ]
        assert len(loop_faults) == 1      # first entry only
        # two incoming edges (fallthrough from main, the back edge) are
        # each patched exactly once
        assert len(loop_patches) == 2
        # the other ~48 iterations were exception-free
        assert result.counters.faults < 10


class TestPrefetchShedding:
    def test_backlog_limits_prefetches(self):
        workload = get_workload("cold_paths")
        cfg = build_cfg(workload.program)
        roomy = CodeCompressionManager(
            cfg,
            SimulationConfig(decompression="pre-all", k_compress=16,
                             k_decompress=4, max_prefetch_backlog=64,
                             **_FAST),
        ).run()
        tight = CodeCompressionManager(
            cfg,
            SimulationConfig(decompression="pre-all", k_compress=16,
                             k_decompress=4, max_prefetch_backlog=1,
                             **_FAST),
        ).run()
        assert tight.counters.dropped_prefetches > \
            roomy.counters.dropped_prefetches
        assert tight.counters.decompressions < \
            roomy.counters.decompressions + \
            roomy.counters.dropped_prefetches + 1


class TestManagerView:
    def test_block_units_are_identity(self, loop_cfg):
        manager = CodeCompressionManager(
            loop_cfg, SimulationConfig(**_FAST)
        )
        for block in loop_cfg.blocks:
            assert manager.unit_of(block.block_id) == block.block_id
            assert manager.unit_blocks(block.block_id) == \
                {block.block_id}

    def test_function_units_group_blocks(self, loop_cfg):
        manager = CodeCompressionManager(
            loop_cfg,
            SimulationConfig(granularity="function", **_FAST),
        )
        fn_block = next(
            b for b in loop_cfg.blocks if b.label == "fn"
        )
        assert manager.unit_of(fn_block.block_id) == fn_block.block_id
        main_unit = manager.unit_of(loop_cfg.entry_id)
        assert loop_cfg.entry_id in manager.unit_blocks(main_unit)

    def test_resident_units_tracks_materialisation(self, straight_cfg):
        manager = CodeCompressionManager(
            straight_cfg,
            SimulationConfig(decompression="ondemand", k_compress=None,
                             **_FAST),
        )
        assert manager.resident_units() == set()
        manager.run()
        assert manager.resident_units() == {0, 1, 2}

    def test_unit_uncompressed_size(self, straight_cfg):
        manager = CodeCompressionManager(
            straight_cfg, SimulationConfig(**_FAST)
        )
        assert manager.unit_uncompressed_size(0) == \
            straight_cfg.block(0).size_bytes


class TestTraceHandling:
    def test_trace_recorded_when_enabled(self, straight_cfg):
        manager = CodeCompressionManager(
            straight_cfg,
            SimulationConfig(record_trace=True, trace_events=False),
        )
        result = manager.run()
        assert result.block_trace == [0, 1, 2]

    def test_trace_suppressed_when_disabled(self, straight_cfg):
        manager = CodeCompressionManager(
            straight_cfg, SimulationConfig(**_FAST)
        )
        assert manager.run().block_trace == []

    def test_max_blocks_stops_early(self):
        cfg = build_cfg(
            assemble(
                "main:\nloop:\n    addi r1, r1, 1\n    jmp loop",
                "forever",
            )
        )
        manager = CodeCompressionManager(
            cfg,
            SimulationConfig(record_trace=True, trace_events=False),
        )
        result = manager.run(max_blocks=25)
        assert result.counters.blocks_executed == 25


class TestWastedDecompressions:
    def test_unused_prefetch_counted_as_wasted(self):
        workload = get_workload("cold_paths")
        cfg = build_cfg(workload.program)
        result = CodeCompressionManager(
            cfg,
            SimulationConfig(decompression="pre-all", k_compress=2,
                             k_decompress=2, **_FAST),
        ).run()
        # pre-all on a 16-arm ladder prefetches arms that never run
        assert result.counters.wasted_decompressions > 0

    def test_ondemand_never_wastes(self):
        workload = get_workload("matmul")
        cfg = build_cfg(workload.program)
        result = CodeCompressionManager(
            cfg,
            SimulationConfig(decompression="ondemand", k_compress=2,
                             **_FAST),
        ).run()
        # every decompression was demanded by an actual entry
        assert result.counters.wasted_decompressions == 0
