"""Unit tests for the memory-budget eviction policies (Section 2).

The LRU/FIFO/largest victim-selection logic was previously covered only
indirectly through the E5 experiment; these tests pin its contract
directly: ranking order, protected-unit exclusion, multi-victim
accumulation, and the unreachable-budget error — plus one end-to-end
simulation per policy.
"""

from __future__ import annotations

import pytest

from repro import api
from repro.core import SimulationConfig
from repro.strategies.budget import BudgetError, MemoryBudget

SIZES = {1: 100, 2: 50, 3: 200, 4: 75}


def _budget(policy: str) -> MemoryBudget:
    return MemoryBudget(limit_bytes=1000, policy=policy)


class TestConstruction:
    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError, match="budget must be positive"):
            MemoryBudget(0)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown eviction policy"):
            MemoryBudget(100, policy="random")

    def test_policies_match_config_constants(self):
        from repro.core import EVICTION_POLICIES

        assert tuple(MemoryBudget.POLICIES) == tuple(EVICTION_POLICIES)


class TestSelectVictims:
    def test_no_eviction_when_it_fits(self):
        budget = _budget("lru")
        assert budget.select_victims(
            needed_bytes=100, current_footprint=800,
            resident={1, 2}, protected=set(), size_of=SIZES.get,
        ) == []

    def test_lru_evicts_least_recently_entered(self):
        budget = _budget("lru")
        for unit in (1, 2, 3):
            budget.on_unit_decompressed(unit)
        budget.on_unit_enter(1)   # 2 is now the least recently used
        budget.on_unit_enter(3)
        victims = budget.select_victims(
            needed_bytes=50, current_footprint=1000,
            resident={1, 2, 3}, protected=set(), size_of=SIZES.get,
        )
        assert victims == [2]

    def test_fifo_evicts_longest_resident(self):
        budget = _budget("fifo")
        for unit in (2, 1, 3):  # residency order: 2 first
            budget.on_unit_decompressed(unit)
        budget.on_unit_enter(2)  # recency must NOT save 2 under FIFO
        victims = budget.select_victims(
            needed_bytes=50, current_footprint=1000,
            resident={1, 2, 3}, protected=set(), size_of=SIZES.get,
        )
        assert victims == [2]

    def test_fifo_re_residency_moves_to_back(self):
        budget = _budget("fifo")
        for unit in (1, 2):
            budget.on_unit_decompressed(unit)
        budget.on_unit_released(1)
        budget.on_unit_decompressed(1)  # 1 re-enters: now newest
        victims = budget.select_victims(
            needed_bytes=1, current_footprint=1000,
            resident={1, 2}, protected=set(), size_of=SIZES.get,
        )
        assert victims == [2]

    def test_largest_evicts_biggest_first(self):
        budget = _budget("largest")
        for unit in (1, 2, 3, 4):
            budget.on_unit_decompressed(unit)
        victims = budget.select_victims(
            needed_bytes=150, current_footprint=1000,
            resident={1, 2, 3, 4}, protected=set(), size_of=SIZES.get,
        )
        assert victims == [3]  # 200 B frees the overshoot in one evict

    def test_protected_units_never_chosen(self):
        budget = _budget("lru")
        for unit in (1, 2, 3):
            budget.on_unit_decompressed(unit)
        victims = budget.select_victims(
            needed_bytes=50, current_footprint=1000,
            resident={1, 2, 3}, protected={1, 2},
            size_of=SIZES.get,
        )
        assert victims == [3]

    def test_accumulates_victims_until_freed(self):
        budget = _budget("lru")
        for unit in (1, 2, 3):
            budget.on_unit_decompressed(unit)
        victims = budget.select_victims(
            needed_bytes=300, current_footprint=1000,
            resident={1, 2, 3}, protected=set(), size_of=SIZES.get,
        )
        # overshoot = 300; evict in LRU order until >= 300 freed
        assert victims == [1, 2, 3]

    def test_budget_error_when_unreachable(self):
        budget = _budget("lru")
        budget.on_unit_decompressed(2)
        with pytest.raises(BudgetError, match="cannot fit"):
            budget.select_victims(
                needed_bytes=500, current_footprint=1000,
                resident={1, 2}, protected={1}, size_of=SIZES.get,
            )


class TestEndToEnd:
    """Each policy must run a real workload correctly under a tight cap."""

    @pytest.mark.parametrize("policy", ("lru", "fifo", "largest"))
    def test_policy_respects_cap_and_semantics(self, policy):
        from repro.cfg import build_cfg
        from repro.core.manager import CodeCompressionManager
        from repro.workloads import get_workload

        workload = get_workload("fsm")
        cfg = build_cfg(workload.program)
        probe = CodeCompressionManager(
            cfg, SimulationConfig(trace_events=False)
        )
        largest = max(block.size_bytes for block in cfg.blocks)
        budget = probe.image.compressed_image_size + 2 * largest + 64
        run = api.run_cell(
            workload,
            SimulationConfig(
                decompression="ondemand", k_compress=None,
                memory_budget=budget, eviction=policy,
                trace_events=False, record_trace=False,
            ),
            cfg=cfg,
        )
        assert run.ok, (policy, run.validation)
        assert run.result.peak_footprint <= budget, policy
        assert run.result.counters.evictions > 0, policy
