"""Unit tests for the versioned ResultSet layer."""

import json

import pytest

from repro import api
from repro.core import SimulationConfig


@pytest.fixture(scope="module")
def small_resultset():
    """A tiny 2x2 grid, computed once for the module."""
    configs = [
        SimulationConfig(decompression="ondemand", k_compress=1,
                         trace_events=False, record_trace=False),
        SimulationConfig(decompression="ondemand", k_compress=None,
                         trace_events=False, record_trace=False),
    ]
    return api.run_grid(["fib", "gcd"], configs, engine="trace")


class TestLookupHelpers:
    def test_deterministic_cell_order(self, small_resultset):
        assert [run.workload for run in small_resultset.runs] == \
            ["fib", "fib", "gcd", "gcd"]
        assert small_resultset.workloads() == ["fib", "gcd"]

    def test_by_workload_and_label(self, small_resultset):
        assert len(small_resultset.by_workload("fib")) == 2
        assert len(small_resultset.by_label("ondemand/kc=1")) == 2

    def test_no_failures(self, small_resultset):
        assert small_resultset.failures() == []

    def test_filter_by_fields(self, small_resultset):
        only = small_resultset.filter(workload="gcd", k_compress=None)
        assert len(only) == 1
        assert only.runs[0].workload == "gcd"

    def test_filter_by_predicate(self, small_resultset):
        fast = small_resultset.filter(
            lambda run: run.result.cycle_overhead < 10.0
        )
        assert all(r.result.cycle_overhead < 10.0 for r in fast.runs)

    def test_filter_unknown_field_raises(self, small_resultset):
        with pytest.raises(KeyError, match="unknown field"):
            small_resultset.filter(compression_level=3)


class TestPivotAndSeries:
    def test_pivot_shape(self, small_resultset):
        table = small_resultset.pivot(
            value="faults", cols="k_compress"
        )
        assert table.columns == ["workload", "1", "None"]
        assert [row[0] for row in table.rows] == ["fib", "gcd"]

    def test_pivot_formatter(self, small_resultset):
        table = small_resultset.pivot(
            value="average_saving", cols="k_compress",
            fmt=lambda v: f"{v:.0%}",
        )
        assert all("%" in str(cell) for row in table.rows
                   for cell in row[1:])

    def test_pivot_unknown_metric(self, small_resultset):
        with pytest.raises(KeyError, match="unknown metric"):
            small_resultset.pivot(value="speediness")

    def test_series_grouped_by_workload(self, small_resultset):
        series = small_resultset.series(
            x="k_compress", y="cycle_overhead",
            x_transform=lambda k: 64 if k is None else k,
        )
        assert set(series) == {"fib", "gcd"}
        assert [x for x, _ in series["fib"].points] == [1, 64]


class TestSchema:
    def test_versioned_envelope(self, small_resultset):
        data = small_resultset.to_dict()
        assert data["schema"] == api.SCHEMA_ID
        assert data["version"] == api.SCHEMA_VERSION == 1
        assert len(data["cells"]) == 4
        assert "execution" in data
        assert "elapsed_s" in data["execution"]["timing"]

    def test_cells_carry_config_metrics_validation(self, small_resultset):
        cell = small_resultset.to_dict()["cells"][0]
        assert cell["workload"] == "fib"
        assert cell["ok"] is True
        assert cell["validation"] == []
        assert cell["config"]["decompression"] == "ondemand"
        assert cell["config"]["strategy_name"] == "ondemand/kc=1"
        assert "cycle_overhead" in cell["metrics"]
        assert "faults" in cell["metrics"]

    def test_execution_block_excludable(self, small_resultset):
        data = small_resultset.to_dict(include_execution=False)
        assert "execution" not in data
        # and the remainder is pure JSON
        assert json.loads(json.dumps(data)) == data

    def test_to_json_writes_file(self, small_resultset, tmp_path):
        path = tmp_path / "rs.json"
        text = small_resultset.to_json(str(path))
        assert json.loads(path.read_text()) == json.loads(text)

    def test_load_checks_schema(self, small_resultset, tmp_path):
        path = tmp_path / "rs.json"
        small_resultset.to_json(str(path))
        data = api.ResultSet.load(str(path))
        assert len(data["cells"]) == 4

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "other", "version": 1}))
        with pytest.raises(ValueError, match="not a"):
            api.ResultSet.load(str(bad))

        stale = tmp_path / "stale.json"
        stale.write_text(json.dumps(
            {"schema": api.SCHEMA_ID, "version": 999}
        ))
        with pytest.raises(ValueError, match="schema version"):
            api.ResultSet.load(str(stale))

    def test_to_csv_flat_rows(self, small_resultset):
        lines = small_resultset.to_csv().strip().splitlines()
        assert len(lines) == 5  # header + 4 cells
        header = lines[0].split(",")
        assert header[:2] == ["workload", "label"]
        assert "cycle_overhead" in header
        assert lines[1].startswith("fib,")

    def test_config_profile_serialised_as_marker(self):
        from repro.api import config_to_dict
        from repro.cfg import EdgeProfile

        with_profile = SimulationConfig(profile=EdgeProfile())
        assert config_to_dict(with_profile)["profile"] == \
            "<edge-profile>"
        assert config_to_dict(SimulationConfig())["profile"] is None
