"""Unit tests for the ISA interpreter."""

import pytest

from repro.cfg import build_cfg
from repro.isa import RA, SP, assemble
from repro.runtime import Machine, MachineError


def run_to_halt(source: str, data_words: int = 4096):
    cfg = build_cfg(assemble(source, "t"))
    machine = Machine(cfg, data_words=data_words)
    block = cfg.entry
    cycles = 0
    while True:
        outcome = machine.run_block(block)
        cycles += outcome.cycles
        if outcome.next_block_id is None:
            return machine, cycles
        block = cfg.block(outcome.next_block_id)


class TestALU:
    def test_arithmetic(self):
        machine, _ = run_to_halt(
            """
main:
    li r1, 7
    li r2, 3
    add r3, r1, r2
    sub r4, r1, r2
    mul r5, r1, r2
    div r6, r1, r2
    mod r7, r1, r2
    halt
"""
        )
        assert machine.registers[3:8] == [10, 4, 21, 2, 1]

    def test_division_truncates_toward_zero(self):
        machine, _ = run_to_halt(
            """
main:
    li r1, -7
    li r2, 2
    div r3, r1, r2
    mod r4, r1, r2
    halt
"""
        )
        assert machine.registers[3] == -3  # C-style truncation
        assert machine.registers[4] == -1

    def test_division_by_zero_raises(self):
        with pytest.raises(MachineError, match="zero"):
            run_to_halt("main:\n    div r1, r2, r0\n    halt")

    def test_logic_and_shifts(self):
        machine, _ = run_to_halt(
            """
main:
    li r1, 0xF0
    li r2, 0x3C
    and r3, r1, r2
    or  r4, r1, r2
    xor r5, r1, r2
    shli r6, r1, 2
    shri r7, r1, 4
    halt
"""
        )
        assert machine.registers[3] == 0x30
        assert machine.registers[4] == 0xFC
        assert machine.registers[5] == 0xCC
        assert machine.registers[6] == 0x3C0
        assert machine.registers[7] == 0x0F

    def test_shift_right_logical_on_negative(self):
        machine, _ = run_to_halt(
            "main:\n    li r1, -1\n    shri r2, r1, 28\n    halt"
        )
        assert machine.registers[2] == 0xF

    def test_overflow_wraps_to_32_bits(self):
        machine, _ = run_to_halt(
            """
main:
    lui r1, 0x7FFF
    ori r1, r1, 0xFFFF
    addi r1, r1, 1
    halt
"""
        )
        assert machine.registers[1] == -(1 << 31)

    def test_slt_and_slti(self):
        machine, _ = run_to_halt(
            """
main:
    li r1, -5
    li r2, 3
    slt r3, r1, r2
    slt r4, r2, r1
    slti r5, r1, 0
    halt
"""
        )
        assert machine.registers[3:6] == [1, 0, 1]

    def test_lui_ori_builds_32bit_constant(self):
        machine, _ = run_to_halt(
            "main:\n    lui r1, 0xEDB8\n    ori r1, r1, 0x8320\n    halt"
        )
        assert machine.registers[1] & 0xFFFFFFFF == 0xEDB88320


class TestMemory:
    def test_store_load(self):
        machine, _ = run_to_halt(
            """
main:
    li r1, 0x100
    li r2, -77
    st r2, 4(r1)
    ld r3, 4(r1)
    halt
"""
        )
        assert machine.registers[3] == -77

    def test_misaligned_access_raises(self):
        with pytest.raises(MachineError, match="misaligned"):
            run_to_halt(
                "main:\n    li r1, 2\n    ld r2, 0(r1)\n    halt"
            )

    def test_out_of_range_access_raises(self):
        with pytest.raises(MachineError, match="out of range"):
            run_to_halt(
                "main:\n    lui r1, 0x7000\n    ld r2, 0(r1)\n    halt"
            )

    def test_stack_pointer_initialised_to_top(self):
        cfg = build_cfg(assemble("main:\n    halt", "t"))
        machine = Machine(cfg, data_words=1024)
        assert machine.registers[SP] == 1023 * 4


class TestControlFlow:
    def test_taken_and_fallthrough(self):
        machine, _ = run_to_halt(
            """
main:
    li r1, 1
    beq r1, r0, skip
    li r2, 10
skip:
    li r3, 20
    halt
"""
        )
        assert machine.registers[2] == 10  # not taken -> fallthrough
        assert machine.registers[3] == 20

    def test_loop_executes_expected_count(self):
        machine, _ = run_to_halt(
            """
main:
    li r1, 5
    li r2, 0
loop:
    addi r2, r2, 1
    subi r1, r1, 1
    bne r1, r0, loop
    halt
"""
        )
        assert machine.registers[2] == 5

    def test_call_sets_link_register(self):
        machine, _ = run_to_halt(
            """
main:
    call fn
    halt
fn:
    mov r1, ra
    ret
"""
        )
        assert machine.registers[1] == 4  # return address after call

    def test_nested_calls_with_stack(self):
        machine, _ = run_to_halt(
            """
main:
    call outer
    halt
outer:
    subi sp, sp, 4
    st ra, 0(sp)
    call inner
    ld ra, 0(sp)
    addi sp, sp, 4
    addi r2, r2, 1
    ret
inner:
    addi r1, r1, 1
    ret
"""
        )
        assert machine.registers[1] == 1
        assert machine.registers[2] == 1

    def test_halt_stops_machine(self):
        machine, _ = run_to_halt("main:\n    halt")
        assert machine.halted
        with pytest.raises(MachineError, match="halted"):
            machine.run_block(machine.cfg.entry)

    def test_max_steps_guard(self):
        cfg = build_cfg(
            assemble("main:\nloop:\n    jmp loop", "inf")
        )
        machine = Machine(cfg, data_words=64, max_steps=100)
        block = cfg.entry
        with pytest.raises(MachineError, match="max_steps"):
            while True:
                outcome = machine.run_block(block)
                block = cfg.block(outcome.next_block_id)

    def test_edge_kinds_reported(self):
        cfg = build_cfg(
            assemble(
                "main:\n    beq r0, r0, t\n    nop\nt:\n    halt", "k"
            )
        )
        machine = Machine(cfg)
        outcome = machine.run_block(cfg.entry)
        assert outcome.edge_kind == "taken"

    def test_reset_restores_initial_state(self):
        machine, _ = run_to_halt(
            "main:\n    li r1, 9\n    st r1, 0(r0)\n    halt"
        )
        machine.reset()
        assert machine.registers[1] == 0
        assert machine.load_word(0) == 0
        assert not machine.halted
        assert machine.steps == 0


class TestCycleAccounting:
    def test_cycles_match_instruction_costs(self):
        cfg = build_cfg(
            assemble("main:\n    li r1, 2\n    mul r2, r1, r1\n    halt",
                     "c")
        )
        machine = Machine(cfg)
        outcome = machine.run_block(cfg.entry)
        # li (1) + mul (3) + halt (1)
        assert outcome.cycles == 5
        assert outcome.instructions == 3
