"""Unit tests for the instruction definitions."""

import pytest

from repro.isa import instructions as ins
from repro.isa.instructions import (
    BLOCK_TERMINATORS,
    BRANCH_OPS,
    CONDITIONAL_BRANCHES,
    CycleCosts,
    Instruction,
    Opcode,
)


class TestInstructionConstruction:
    def test_reg_reg_constructor(self):
        instr = ins.add(1, 2, 3)
        assert instr.opcode is Opcode.ADD
        assert (instr.rd, instr.rs1, instr.rs2) == (1, 2, 3)

    def test_reg_imm_constructor(self):
        instr = ins.addi(4, 5, -7)
        assert instr.opcode is Opcode.ADDI
        assert (instr.rd, instr.rs1, instr.imm) == (4, 5, -7)

    def test_load_store_constructors(self):
        load = ins.ld(1, 2, 8)
        store = ins.st(3, 4, -4)
        assert (load.rd, load.rs1, load.imm) == (1, 2, 8)
        assert (store.rs2, store.rs1, store.imm) == (3, 4, -4)

    def test_branch_carries_label(self):
        instr = ins.beq(1, 2, "target")
        assert instr.target == "target"
        assert instr.is_branch
        assert instr.is_conditional

    def test_register_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            Instruction(Opcode.ADD, rd=16)
        with pytest.raises(ValueError, match="out of range"):
            Instruction(Opcode.ADD, rs1=-1)

    def test_immediate_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="32 bits"):
            Instruction(Opcode.LI, rd=1, imm=1 << 31)

    def test_instructions_are_frozen(self):
        instr = ins.nop()
        with pytest.raises(Exception):
            instr.rd = 3  # type: ignore[misc]

    def test_with_imm_returns_new_instruction(self):
        instr = ins.jmp("label")
        patched = instr.with_imm(0x40)
        assert patched.imm == 0x40
        assert patched.target == "label"
        assert instr.imm == 0


class TestClassification:
    def test_conditionals_subset_of_branches(self):
        assert CONDITIONAL_BRANCHES < BRANCH_OPS

    def test_call_is_branch_but_not_terminator(self):
        assert Opcode.CALL in BRANCH_OPS
        assert Opcode.CALL not in BLOCK_TERMINATORS

    def test_halt_and_ret_terminate_blocks(self):
        assert Opcode.HALT in BLOCK_TERMINATORS
        assert Opcode.RET in BLOCK_TERMINATORS

    def test_alu_is_not_terminator(self):
        assert not ins.add(1, 2, 3).is_terminator

    def test_jmp_is_terminator(self):
        assert ins.jmp("x").is_terminator


class TestCycleCosts:
    def test_alu_single_cycle(self):
        assert CycleCosts.cost(Opcode.ADD) == 1
        assert CycleCosts.cost(Opcode.XOR) == 1

    def test_multiply_slower_than_add(self):
        assert CycleCosts.cost(Opcode.MUL) > CycleCosts.cost(Opcode.ADD)

    def test_divide_slowest(self):
        assert CycleCosts.cost(Opcode.DIV) >= CycleCosts.cost(Opcode.MUL)

    def test_memory_ops_cost(self):
        assert CycleCosts.cost(Opcode.LD) == CycleCosts.MEM
        assert CycleCosts.cost(Opcode.ST) == CycleCosts.MEM

    def test_instruction_cycles_property(self):
        assert ins.mul(1, 2, 3).cycles == CycleCosts.MUL
        assert ins.nop().cycles == 1


class TestRendering:
    def test_render_reg_reg(self):
        assert ins.add(1, 2, 3).render() == "add r1, r2, r3"

    def test_render_reg_imm(self):
        assert ins.addi(1, 2, -5).render() == "addi r1, r2, -5"

    def test_render_memory(self):
        assert ins.ld(1, 2, 8).render() == "ld r1, 8(r2)"
        assert ins.st(3, 4, 0).render() == "st r3, 0(r4)"

    def test_render_branch_with_label(self):
        assert ins.beq(1, 2, "loop").render() == "beq r1, r2, loop"

    def test_render_branch_resolved(self):
        resolved = ins.jmp("x").with_imm(0x20)
        assert "0x20" in resolved.render() or "x" in resolved.render()

    def test_render_bare_ops(self):
        assert ins.ret().render() == "ret"
        assert ins.halt().render() == "halt"
        assert ins.nop().render() == "nop"
