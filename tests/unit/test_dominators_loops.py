"""Unit tests for dominator analysis and natural-loop detection."""

import pytest

from repro.cfg import (
    build_cfg,
    dominates,
    dominator_sets,
    find_back_edges,
    hot_block_estimate,
    immediate_dominators,
    loop_nest_depths,
    natural_loops,
)
from repro.isa import assemble


@pytest.fixture
def nested_loop_cfg():
    return build_cfg(
        assemble(
            """
main:
    li   r1, 3
outer:
    li   r2, 3
inner:
    subi r2, r2, 1
    bne  r2, r0, inner
    subi r1, r1, 1
    bne  r1, r0, outer
    halt
""",
            "nested",
        )
    )


class TestDominators:
    def test_entry_has_no_idom(self, loop_cfg):
        idom = immediate_dominators(loop_cfg)
        assert idom[loop_cfg.entry_id] is None

    def test_entry_dominates_everything(self, loop_cfg):
        doms = dominator_sets(loop_cfg)
        for block_id in doms:
            assert loop_cfg.entry_id in doms[block_id]

    def test_block_dominates_itself(self, loop_cfg):
        doms = dominator_sets(loop_cfg)
        for block_id, dominators in doms.items():
            assert block_id in dominators

    def test_linear_chain_dominance(self):
        cfg = build_cfg(
            assemble(
                "main:\n    nop\na:\n    nop\nb:\n    halt", "chain"
            )
        )
        # in a straight line every earlier block dominates later ones
        assert dominates(cfg, 0, 1)
        assert dominates(cfg, 1, 2)
        assert not dominates(cfg, 2, 0)

    def test_diamond_join_not_dominated_by_arms(self, figure1_cfg):
        doms = dominator_sets(figure1_cfg)
        # find the join block: it has two predecessors
        joins = [
            b.block_id for b in figure1_cfg.blocks
            if len(figure1_cfg.predecessors(b.block_id)) >= 2
            and b.block_id != figure1_cfg.entry_id
        ]
        assert joins
        for join in joins:
            preds = figure1_cfg.predecessors(join)
            if len(preds) >= 2:
                for pred in preds:
                    # an arm with a sibling cannot dominate the join
                    siblings = [p for p in preds if p != pred]
                    if siblings and not any(
                        dominates(figure1_cfg, pred, s) for s in siblings
                    ):
                        assert pred not in doms[join] or pred == join


class TestLoops:
    def test_simple_loop_found(self, loop_cfg):
        loops = natural_loops(loop_cfg)
        assert len(loops) == 1
        loop = loops[0]
        header_block = loop_cfg.block(loop.header)
        assert header_block.label == "loop"

    def test_self_loop_body_is_single_block(self, loop_cfg):
        loop = natural_loops(loop_cfg)[0]
        assert loop.body == {loop.header}
        assert loop.size == 1

    def test_nested_loops(self, nested_loop_cfg):
        loops = natural_loops(nested_loop_cfg)
        assert len(loops) == 2
        sizes = sorted(loop.size for loop in loops)
        # inner loop is strictly smaller than the outer one
        assert sizes[0] < sizes[1]

    def test_nest_depths(self, nested_loop_cfg):
        depths = loop_nest_depths(nested_loop_cfg)
        assert max(depths.values()) == 2
        assert depths[nested_loop_cfg.entry_id] == 0

    def test_back_edges_target_dominators(self, nested_loop_cfg):
        doms = dominator_sets(nested_loop_cfg)
        for tail, header in find_back_edges(nested_loop_cfg):
            assert header in doms[tail]

    def test_hot_estimate_scales_with_depth(self, nested_loop_cfg):
        hot = hot_block_estimate(nested_loop_cfg)
        depths = loop_nest_depths(nested_loop_cfg)
        inner = max(depths, key=depths.get)
        assert hot[inner] == 100.0
        assert hot[nested_loop_cfg.entry_id] == 1.0

    def test_acyclic_program_has_no_loops(self):
        cfg = build_cfg(assemble("main:\n    nop\n    halt", "flat"))
        assert natural_loops(cfg) == []
        assert find_back_edges(cfg) == []
