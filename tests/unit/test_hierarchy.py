"""Unit tests for the explicit memory-hierarchy model."""

import pytest

from repro.analysis import EnergyModel
from repro.core import ConfigError, SimulationConfig, simulate
from repro.memory.hierarchy import (
    HIERARCHIES,
    MemoryHierarchy,
    MemoryLevel,
    available_hierarchies,
    get_hierarchy,
    register_hierarchy,
)
from repro.workloads import get_workload

_FAST = dict(trace_events=False, record_trace=False)


class TestMemoryLevel:
    def test_exact_byte_level_moves_exact_bytes(self):
        level = MemoryLevel("target")
        assert level.bytes_moved(13) == 13
        assert level.transfer_cycles(13) == 0

    def test_burst_rounding(self):
        level = MemoryLevel("dram", read_granularity=32)
        assert level.bytes_moved(1) == 32
        assert level.bytes_moved(32) == 32
        assert level.bytes_moved(33) == 64
        assert level.bytes_moved(0) == 0

    def test_transfer_cycles_combine_access_and_bus(self):
        level = MemoryLevel(
            "flash", access_cycles=8, bytes_per_cycle=4,
            read_granularity=4,
        )
        # 10 bytes -> 12 moved -> 8 + ceil(12/4) = 11 cycles
        assert level.transfer_cycles(10) == 11
        assert level.transfer_cycles(0) == 0

    def test_untimed_bus_charges_access_only(self):
        level = MemoryLevel("rom", access_cycles=5, bytes_per_cycle=0)
        assert level.transfer_cycles(1000) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryLevel("bad", access_cycles=-1)
        with pytest.raises(ValueError):
            MemoryLevel("bad", read_granularity=0)
        with pytest.raises(ValueError):
            MemoryLevel("bad", nj_per_byte=-0.1)


class TestRegistry:
    def test_presets_registered(self):
        names = available_hierarchies()
        assert {"flat", "spm-front", "two-level-dram"} <= set(names)
        assert len(names) >= 3

    def test_get_hierarchy_by_name_and_passthrough(self):
        flat = get_hierarchy("flat")
        assert isinstance(flat, MemoryHierarchy)
        assert get_hierarchy(flat) is flat

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown memory hierarchy"):
            get_hierarchy("warp-drive")

    def test_custom_registration(self):
        custom = MemoryHierarchy(
            name="test-custom",
            front=MemoryLevel("f"),
            target=MemoryLevel("t", read_granularity=2),
        )
        register_hierarchy(custom)
        try:
            assert get_hierarchy("test-custom") is custom
            config = SimulationConfig(hierarchy="test-custom", **_FAST)
            assert config.hierarchy == "test-custom"
        finally:
            HIERARCHIES.remove("test-custom")

    def test_in_unified_catalog(self):
        from repro.registry import all_registries

        assert "hierarchies" in all_registries()


class TestConfigIntegration:
    def test_default_is_flat(self):
        assert SimulationConfig().hierarchy == "flat"

    def test_unknown_hierarchy_rejected(self):
        with pytest.raises(ConfigError, match="unknown memory hierarchy"):
            SimulationConfig(hierarchy="nope")

    def test_strategy_name_tags_non_flat(self):
        flat = SimulationConfig(**_FAST)
        spm = SimulationConfig(hierarchy="spm-front", **_FAST)
        assert "spm-front" not in flat.strategy_name
        assert spm.strategy_name.endswith("/spm-front")


class TestSimulationEffects:
    @pytest.fixture(scope="class")
    def results(self):
        workload = get_workload("dijkstra")
        out = {}
        for name in ("flat", "spm-front", "two-level-dram"):
            out[name] = simulate(
                workload.program,
                SimulationConfig(
                    decompression="ondemand", k_compress=4,
                    hierarchy=name, **_FAST,
                ),
            )
        return out

    def test_burst_rounding_inflates_target_traffic(self, results):
        flat = results["flat"].counters.target_memory_bytes
        spm = results["spm-front"].counters.target_memory_bytes
        dram = results["two-level-dram"].counters.target_memory_bytes
        assert flat < spm < dram

    def test_slow_target_adds_stall_cycles(self, results):
        assert results["flat"].counters.stall_cycles < \
            results["spm-front"].counters.stall_cycles
        assert results["flat"].total_cycles < \
            results["spm-front"].total_cycles

    def test_execution_cycles_unchanged_by_hierarchy(self, results):
        cycles = {r.execution_cycles for r in results.values()}
        assert len(cycles) == 1

    def test_energy_differs_per_preset(self, results):
        energies = {
            name: EnergyModel.for_hierarchy(name).total_energy(result)
            for name, result in results.items()
        }
        assert len(set(energies.values())) == 3

    def test_flat_energy_matches_default_model(self, results):
        flat = results["flat"]
        assert EnergyModel.for_hierarchy("flat").total_energy(flat) == \
            EnergyModel().total_energy(flat)


class TestEnergyDerivation:
    def test_flat_model_equals_seed_constants(self):
        model = EnergyModel.for_hierarchy("flat")
        assert model.bus_nj_per_byte == 1.0
        assert model.cpu_nj_per_cycle == 0.1
        assert model.access_nj == 0.0

    def test_non_flat_model_uses_target_level(self):
        spm = get_hierarchy("spm-front")
        model = EnergyModel.for_hierarchy(spm)
        assert model.bus_nj_per_byte == spm.target.nj_per_byte
        assert model.access_nj == spm.target.nj_per_access
