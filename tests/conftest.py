"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cfg import build_cfg
from repro.isa import assemble

#: Small two-loop program mirroring the paper's Figure 1 shape:
#: entry -> branch -> (left loop | right block) -> join -> back edge.
FIGURE1_SOURCE = """
main:                  ; B0
    li   r1, 3
    li   r2, 0
    andi r3, r1, 1
    beq  r3, r0, right
left:                  ; B1 - left arm, self loop
    addi r2, r2, 1
    subi r1, r1, 1
    bne  r1, r0, left
    jmp  join
right:                 ; B2
    addi r2, r2, 10
join:                  ; B3
    addi r4, r4, 1
    slti r5, r4, 4
    bne  r5, r0, main_back
    halt
main_back:             ; B5
    li   r1, 3
    jmp  left
"""

#: The Figure 5 program: B0 <-> B1 loop then exit through B3.
FIGURE5_SOURCE = """
main:                  ; B0
    addi r1, r1, 1
    slti r2, r1, 3
    beq  r2, r0, exit_path
body:                  ; B1
    addi r3, r3, 5
    jmp  main
exit_path:             ; B3-ish
    addi r4, r4, 7
    halt
"""


@pytest.fixture
def figure1_program():
    return assemble(FIGURE1_SOURCE, "figure1")


@pytest.fixture
def figure1_cfg(figure1_program):
    return build_cfg(figure1_program)


@pytest.fixture
def figure5_program():
    return assemble(FIGURE5_SOURCE, "figure5")


@pytest.fixture
def figure5_cfg(figure5_program):
    return build_cfg(figure5_program)


@pytest.fixture
def loop_program():
    return assemble(
        """
main:
    li   r1, 10
    li   r2, 0
loop:
    add  r2, r2, r1
    subi r1, r1, 1
    bne  r1, r0, loop
    call fn
    halt
fn:
    addi r3, r2, 5
    ret
""",
        "loop_demo",
    )


@pytest.fixture
def loop_cfg(loop_program):
    return build_cfg(loop_program)
