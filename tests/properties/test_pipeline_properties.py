"""Property-based tests for layered codec pipelines.

Three families of invariants:

* every registered pipeline (the curated ``pipeline-search`` pool plus
  a few hand-picked deep compositions) round-trips arbitrary bytes and
  instruction-like words losslessly, in both the self-describing
  transport format and the sized per-block image format;
* composition identities — an ``identity|X`` pipeline decodes to
  exactly the bytes flat ``X`` decodes to, and parsing is canonical
  across the compact and JSON spellings;
* a truncated or corrupted tagged payload always raises
  :class:`~repro.compress.CodecError` (never returns garbage bytes).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compress import (
    CodecError,
    PipelineError,
    available_pipelines,
    get_codec,
    parse_pipeline_payload,
    parse_pipeline_spec,
)
from repro.compress.codec import compress_for_image, decompress_for_image

_BYTES = st.binary(min_size=0, max_size=1024)

#: Instruction-like input: 4-byte words from a small vocabulary,
#: mimicking encoded basic blocks (the transforms' actual workload).
_WORDS = st.lists(
    st.sampled_from([
        b"\x01\x12\x00\x05", b"\x10\x21\xff\xfb", b"\x30\x41\x00\x10",
        b"\x41\x12\x00\x08", b"\x20\x10\x00\x64", b"\x00\x00\x00\x00",
    ]),
    min_size=0,
    max_size=120,
).map(b"".join)

#: The registry pool plus deeper compositions not in the curated set.
_SPECS = tuple(available_pipelines()) + (
    "identity|rle",
    "delta|mtf|stride:3|huffman",
    "dict:8|delta|lzw",
)


@pytest.mark.parametrize("spec", _SPECS)
class TestLossless:
    @given(data=_BYTES)
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_arbitrary_bytes(self, spec, data):
        codec = get_codec(spec)
        assert codec.decompress(codec.compress(data)) == data

    @given(data=_WORDS)
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_instruction_like(self, spec, data):
        codec = get_codec(spec)
        assert codec.decompress(codec.compress(data)) == data

    @given(data=_BYTES)
    @settings(max_examples=20, deadline=None)
    def test_image_format_roundtrip(self, spec, data):
        codec = get_codec(spec)
        payload = compress_for_image(codec, data)
        assert decompress_for_image(codec, payload, len(data)) == data

    @given(data=_WORDS)
    @settings(max_examples=20, deadline=None)
    def test_self_describing_decode(self, spec, data):
        # Any pipeline instance can decode any pipeline's transport
        # payload: the header carries the full spec.
        codec = get_codec(spec)
        other = get_codec("identity|rle")
        payload = codec.compress(data)
        parsed, _, _ = parse_pipeline_payload(payload)
        assert parsed == parse_pipeline_spec(spec)
        if codec.is_trained or spec == "identity|rle":
            return  # shared entropy models don't travel with payloads
        assert other.decompress(payload) == data


class TestCompositionIdentity:
    @given(data=_BYTES)
    @settings(max_examples=30, deadline=None)
    def test_identity_layer_is_flat_codec(self, data):
        # identity|X's entropy *body* is byte-identical to flat X's
        # payload, and both decode to the same bytes.
        flat = get_codec("huffman")
        piped = get_codec("identity|huffman")
        _, _, body = parse_pipeline_payload(piped.compress(data))
        assert body == flat.compress(data)
        assert piped.decompress(piped.compress(data)) == data

    @given(data=_BYTES)
    @settings(max_examples=20, deadline=None)
    def test_spec_spellings_agree(self, data):
        compact = get_codec("delta|stride:2|rle")
        as_json = get_codec(
            '{"layers": ["delta", "stride:2"], "entropy": "rle"}'
        )
        assert compact.name == as_json.name
        assert compact.compress(data) == as_json.compress(data)


class TestCorruption:
    @given(data=_WORDS)
    @settings(max_examples=15, deadline=None)
    def test_truncation_raises(self, data):
        codec = get_codec("delta|huffman")
        payload = codec.compress(data)
        for cut in range(len(payload)):
            with pytest.raises(CodecError):
                codec.decompress(payload[:cut])

    @given(data=_WORDS, index=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, deadline=None)
    def test_corruption_never_returns_garbage(self, data, index):
        codec = get_codec("delta|huffman")
        payload = bytearray(codec.compress(data))
        pos = index % len(payload)
        payload[pos] ^= 0x5A
        try:
            decoded = codec.decompress(bytes(payload))
        except CodecError:
            return  # clean, typed failure
        # A flip the entropy stage absorbed must still be caught by
        # the pipeline CRC unless the decode is genuinely identical.
        assert decoded == data

    def test_bad_magic_raises(self):
        codec = get_codec("delta|huffman")
        payload = bytearray(codec.compress(b"abcd" * 8))
        payload[0] ^= 0xFF
        with pytest.raises(PipelineError):
            codec.decompress(bytes(payload))
