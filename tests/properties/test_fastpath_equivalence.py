"""Equivalence of the batched fast paths with the frozen seed code.

The batched :class:`~repro.compress.bitio.BitWriter`/``BitReader`` and
the table-driven Huffman codec must produce *byte-identical* streams to
the seed implementations preserved in :mod:`repro.compress.reference`.
These tests drive both sides with the same (hypothesis-generated)
inputs and assert equality, plus golden payload digests so that a
simultaneous change to both implementations cannot slip through.
"""

import hashlib
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.compress.bitio import BitIOError, BitReader, BitWriter
from repro.compress.codec import CodecError
from repro.compress.huffman import (
    CanonicalDecoder,
    HuffmanCodec,
    _canonical_codes,
    _code_lengths,
)
from repro.compress.reference import (
    ReferenceBitReader,
    ReferenceBitWriter,
    reference_huffman_compress,
    reference_huffman_decompress,
)

# ----------------------------------------------------------------------
# Bit I/O equivalence
# ----------------------------------------------------------------------

#: One bit-writer operation: (kind, value, width).
_write_ops = st.one_of(
    st.tuples(st.just("bit"), st.integers(0, 1), st.just(1)),
    st.tuples(
        st.just("bits"),
        st.integers(min_value=0, max_value=(1 << 70) - 1),
        st.integers(min_value=0, max_value=70),
    ),
    st.tuples(st.just("unary"), st.integers(0, 40), st.just(0)),
    st.tuples(st.just("gamma"), st.integers(1, 1 << 20), st.just(0)),
)


def _apply(writer, op):
    kind, value, width = op
    if kind == "bit":
        writer.write_bit(value)
    elif kind == "bits":
        writer.write_bits(value & ((1 << width) - 1), width)
    elif kind == "unary":
        writer.write_unary(value)
    else:
        writer.write_gamma(value)


class TestBitWriterEquivalence:
    @given(st.lists(_write_ops, max_size=60))
    @settings(max_examples=200, deadline=None)
    def test_streams_byte_identical(self, ops):
        fast = BitWriter()
        seed = ReferenceBitWriter()
        for op in ops:
            _apply(fast, op)
            _apply(seed, op)
            assert fast.bit_length == seed.bit_length
        assert fast.getvalue() == seed.getvalue()

    @given(st.lists(_write_ops, max_size=40), st.data())
    @settings(max_examples=150, deadline=None)
    def test_reader_values_match(self, ops, data):
        seed_writer = ReferenceBitWriter()
        for op in ops:
            _apply(seed_writer, op)
        stream = seed_writer.getvalue()
        fast = BitReader(stream)
        seed = ReferenceBitReader(stream)
        while seed.bits_remaining:
            width = data.draw(
                st.integers(0, min(70, seed.bits_remaining)),
                label="width",
            )
            assert fast.read_bits(width) == seed.read_bits(width)
            assert fast.bit_position == seed.bit_position
            assert fast.bits_remaining == seed.bits_remaining

    def test_wide_value_range_check_closed(self):
        # The seed skipped validation for width >= 64; the batched
        # writer validates every width.
        writer = BitWriter()
        with pytest.raises(BitIOError, match="does not fit"):
            writer.write_bits(1 << 64, 64)
        with pytest.raises(BitIOError, match="does not fit"):
            writer.write_bits(1 << 100, 100)
        writer.write_bits((1 << 64) - 1, 64)  # boundary still accepted
        assert writer.bit_length == 64

    def test_reference_writer_had_the_gap(self):
        # Documents the seed bug the fast path fixes: the reference
        # implementation silently accepts an oversized 64-bit value.
        seed = ReferenceBitWriter()
        seed.write_bits(1 << 64, 64)  # no exception — the seed gap
        assert seed.bit_length == 64

    @given(st.binary(max_size=64), st.integers(0, 7))
    @settings(max_examples=100, deadline=None)
    def test_peek_matches_read(self, data, lead):
        reader = BitReader(data)
        if reader.bits_remaining < lead:
            return
        reader.skip_bits(lead)
        for width in (0, 1, 5, 8, 13, 16):
            if width > reader.bits_remaining:
                # Padding bits beyond the end read as zero.
                tail = reader.bits_remaining
                expected = BitReader(data)
                expected.skip_bits(reader.bit_position)
                value = expected.read_bits(tail) << (width - tail)
                assert reader.peek_bits(width) == value
            else:
                peeked = reader.peek_bits(width)
                position = reader.bit_position
                assert peeked == reader.read_bits(width)
                reader._position = position  # rewind for the next width


# ----------------------------------------------------------------------
# Huffman equivalence
# ----------------------------------------------------------------------

_byte_data = st.one_of(
    st.binary(max_size=2048),
    # Low-entropy inputs that actually take the Huffman path.
    st.lists(st.integers(0, 7), min_size=200, max_size=2048).map(bytes),
    st.lists(st.integers(0, 1), min_size=200, max_size=2048).map(bytes),
)


class TestHuffmanEquivalence:
    @given(_byte_data)
    @settings(max_examples=150, deadline=None)
    def test_compress_byte_identical(self, data):
        assert HuffmanCodec().compress(data) == \
            reference_huffman_compress(data)

    @given(_byte_data)
    @settings(max_examples=150, deadline=None)
    def test_decoders_agree_and_invert(self, data):
        payload = reference_huffman_compress(data)
        assert HuffmanCodec().decompress(payload) == data
        assert reference_huffman_decompress(payload) == data

    @given(st.dictionaries(st.integers(0, 255), st.integers(1, 10000),
                           min_size=2, max_size=256))
    @settings(max_examples=100, deadline=None)
    def test_canonical_decoder_matches_dict_probe(self, frequencies):
        from collections import Counter

        lengths = _code_lengths(Counter(frequencies))
        codes = _canonical_codes(lengths)
        decoder = CanonicalDecoder(lengths)
        probe = {(code, length): symbol
                 for symbol, (code, length) in codes.items()}
        # Encode every symbol once, decode with both algorithms.
        writer = BitWriter()
        symbols = sorted(codes)
        for symbol in symbols:
            code, length = codes[symbol]
            writer.write_bits(code, length)
        reader = BitReader(writer.getvalue())
        for symbol in symbols:
            assert decoder.read_symbol(reader) == symbol
        # Dict probing (the seed decode loop) agrees bit for bit.
        reference = ReferenceBitReader(writer.getvalue())
        for expected in symbols:
            code = 0
            length = 0
            while True:
                code = (code << 1) | reference.read_bit()
                length += 1
                found = probe.get((code, length))
                if found is not None:
                    assert found == expected
                    break

    def test_truncated_stream_raises_codec_error(self):
        payload = reference_huffman_compress(b"abracadabra" * 60)
        assert payload[0] == 2  # actually huffman-coded
        with pytest.raises(CodecError, match="truncated"):
            HuffmanCodec().decompress(payload[:-8])


class TestGoldenPayloads:
    """Digest-pinned payloads: the stream format must never drift."""

    def _corpus(self):
        rng = random.Random(99)
        return {
            "abracadabra": b"abracadabra" * 60,
            "skewed": bytes(
                [0] * 500 + [1] * 250 + [2] * 120 + [3] * 60
                + [4] * 30 + [5] * 20 + [6] * 10
            ),
            "random64": bytes(rng.choices(range(64), k=2048)),
            "longtail": bytes(rng.choices(
                range(200),
                weights=[2 ** max(0, 14 - i) for i in range(200)],
                k=3000,
            )),
        }

    _GOLDEN = {
        "abracadabra": (2, "2451673619afda7472ffb873b7410352"
                           "240da68d7ce84f0473527dcfeeaf12c9"),
        "skewed": (2, "b29ef1cb3137d5a7d9fd51d9155249ef"
                      "03e9bb0614a435248bedf70749b16f85"),
        "random64": (2, "b452e54123d28d36efa484133e732704"
                        "474aa1611259adfb7fab7fc4498e4cd8"),
        "longtail": (2, "4edd84e8e91965a353192747c2d688e5"
                        "99530753d755c1d489ade8ae05cd3b49"),
    }

    def test_huffman_payload_digests(self):
        corpus = self._corpus()
        for name, (tag, digest) in self._GOLDEN.items():
            payload = HuffmanCodec().compress(corpus[name])
            assert payload[0] == tag, name
            assert hashlib.sha256(payload).hexdigest() == digest, name
            assert HuffmanCodec().decompress(payload) == corpus[name]

    def test_degenerate_payloads_exact(self):
        codec = HuffmanCodec()
        assert codec.compress(b"") == bytes.fromhex("0000000000")
        assert codec.compress(b"\x07" * 300) == \
            bytes.fromhex("01070000012c")
