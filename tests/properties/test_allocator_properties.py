"""Property-based tests for the free-list allocator.

Invariants checked against random allocate/free sequences:

* no two live allocations overlap;
* holes and allocations tile the extent exactly (no lost bytes);
* holes are coalesced (no two adjacent holes);
* used_bytes equals the sum of live allocation sizes.
"""

from hypothesis import given, settings, strategies as st

from repro.memory import AllocationError, FreeListAllocator

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("alloc"), st.integers(min_value=1,
                                                max_value=256)),
        st.tuples(st.just("free"), st.integers(min_value=0, max_value=30)),
    ),
    min_size=1,
    max_size=120,
)


def _check_invariants(alloc: FreeListAllocator) -> None:
    allocations = sorted(alloc.allocations().items())
    holes = sorted(alloc.holes(), key=lambda hole: hole.start)

    # live allocations never overlap
    for (start_a, size_a), (start_b, _) in zip(allocations,
                                               allocations[1:]):
        assert start_a + size_a <= start_b

    # used accounting is exact
    assert alloc.used_bytes == sum(size for _, size in allocations)

    # holes are coalesced: no hole touches the next hole
    for hole, nxt in zip(holes, holes[1:]):
        assert hole.end < nxt.start

    # allocations and holes tile the tracked region without overlap
    regions = [(start, start + size) for start, size in allocations]
    regions += [(hole.start, hole.end) for hole in holes]
    regions.sort()
    for (_, end_a), (start_b, _) in zip(regions, regions[1:]):
        assert end_a <= start_b


class TestAllocatorInvariants:
    @given(ops=_OPS)
    @settings(max_examples=60, deadline=None)
    def test_unbounded_random_ops(self, ops):
        alloc = FreeListAllocator()
        live = []
        for op, value in ops:
            if op == "alloc":
                live.append(alloc.allocate(value))
            elif live:
                alloc.free(live.pop(value % len(live)))
            _check_invariants(alloc)

    @given(ops=_OPS)
    @settings(max_examples=60, deadline=None)
    def test_bounded_random_ops(self, ops):
        alloc = FreeListAllocator(capacity=2048)
        live = []
        for op, value in ops:
            if op == "alloc":
                try:
                    live.append(alloc.allocate(value))
                except AllocationError:
                    pass  # full is a legitimate outcome
            elif live:
                alloc.free(live.pop(value % len(live)))
            _check_invariants(alloc)
            assert alloc.used_bytes + alloc.free_bytes <= 2048

    @given(ops=_OPS)
    @settings(max_examples=30, deadline=None)
    def test_compaction_preserves_totals(self, ops):
        alloc = FreeListAllocator(capacity=4096)
        live = []
        for op, value in ops:
            if op == "alloc":
                try:
                    live.append(alloc.allocate(value))
                except AllocationError:
                    pass
            elif live:
                alloc.free(live.pop(value % len(live)))
        used_before = alloc.used_bytes
        count_before = alloc.live_allocations
        alloc.compact()
        assert alloc.used_bytes == used_before
        assert alloc.live_allocations == count_before
        assert alloc.hole_count <= 1
        _check_invariants(alloc)
