"""Property-based tests: every codec is lossless on arbitrary bytes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compress import available_codecs, get_codec
from repro.compress.codec import compress_for_image, decompress_for_image

_BYTES = st.binary(min_size=0, max_size=2048)

#: Instruction-like input: 4-byte words drawn from a small vocabulary,
#: mimicking encoded basic blocks (the codecs' actual workload).
_WORDS = st.lists(
    st.sampled_from([
        b"\x01\x12\x00\x05", b"\x10\x21\xff\xfb", b"\x30\x41\x00\x10",
        b"\x41\x12\x00\x08", b"\x20\x10\x00\x64", b"\x00\x00\x00\x00",
    ]),
    min_size=0,
    max_size=200,
).map(b"".join)


@pytest.mark.parametrize("name", sorted(available_codecs()))
class TestLossless:
    @given(data=_BYTES)
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_arbitrary_bytes(self, name, data):
        codec = get_codec(name)
        assert codec.decompress(codec.compress(data)) == data

    @given(data=_WORDS)
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_instruction_like(self, name, data):
        codec = get_codec(name)
        assert codec.decompress(codec.compress(data)) == data

    @given(data=_BYTES)
    @settings(max_examples=25, deadline=None)
    def test_image_format_roundtrip(self, name, data):
        codec = get_codec(name)
        payload = compress_for_image(codec, data)
        assert decompress_for_image(codec, payload, len(data)) == data

    @given(data=_BYTES)
    @settings(max_examples=25, deadline=None)
    def test_expansion_bounded(self, name, data):
        # raw fallback: blow-up never exceeds a small constant header
        codec = get_codec(name)
        assert len(codec.compress(data)) <= len(data) + 8


class TestSharedModelCrossTraining:
    @given(
        corpus=st.lists(_WORDS, min_size=1, max_size=8),
        sample=_WORDS,
    )
    @settings(max_examples=30, deadline=None)
    def test_trained_codec_handles_unseen_blocks(self, corpus, sample):
        # the model is trained on one corpus but must correctly code any
        # other block (escapes / literals cover unseen symbols)
        for name in ("shared-dict", "shared-huffman", "shared-fields"):
            codec = get_codec(name)
            codec.train(corpus)
            payload = codec.compress_block(sample)
            assert codec.decompress_block(payload, len(sample)) == sample
