"""Property-based system tests: random programs, random configurations.

The differential oracle as a hypothesis property: for any generated
program and any strategy configuration, the simulation must (a) terminate,
(b) produce the same architectural state as the uncompressed run, and
(c) keep its footprint between the compressed floor and the
compressed+all-decompressed ceiling.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cfg import build_cfg
from repro.core import SimulationConfig
from repro.core.manager import CodeCompressionManager
from repro.isa.encoding import decode_program, encode_program
from repro.workloads import GeneratorConfig, generate_program

_FAST = dict(trace_events=False, record_trace=True)

_CONFIGS = st.builds(
    lambda dec, kc, kd, predictor, codec: SimulationConfig(
        decompression=dec,
        k_compress=kc,
        k_decompress=kd,
        predictor=predictor,
        codec=codec,
        **_FAST,
    ),
    dec=st.sampled_from(["ondemand", "pre-all", "pre-single"]),
    kc=st.one_of(st.none(), st.integers(min_value=1, max_value=12)),
    kd=st.integers(min_value=1, max_value=4),
    predictor=st.sampled_from(
        ["online-profile", "last-successor", "markov"]
    ),
    codec=st.sampled_from(["shared-dict", "shared-fields", "lzw"]),
)

_GENERATOR_CONFIGS = st.builds(
    lambda seed, segments: GeneratorConfig(seed=seed, segments=segments),
    seed=st.integers(min_value=0, max_value=40),
    segments=st.integers(min_value=3, max_value=12),
)


class TestSystemInvariants:
    @given(gen=_GENERATOR_CONFIGS, config=_CONFIGS)
    @settings(max_examples=25, deadline=None)
    def test_transparency_and_bounds(self, gen, config):
        program = generate_program(gen)
        cfg = build_cfg(program)
        base = CodeCompressionManager(
            cfg, SimulationConfig(decompression="none", **_FAST)
        ).run()
        manager = CodeCompressionManager(cfg, config)
        result = manager.run()

        # (b) transparency
        assert result.registers == base.registers
        assert result.block_trace == base.block_trace
        assert result.execution_cycles == base.execution_cycles

        # (c) footprint bounds
        floor = manager.image.compressed_image_size
        ceiling = floor + cfg.total_size_bytes()
        for _, footprint in result.footprint.samples:
            assert floor <= footprint <= ceiling

        # overhead is never negative; total decomposes exactly
        assert result.total_cycles >= result.execution_cycles
        assert result.total_cycles == (
            result.execution_cycles + result.counters.stall_cycles
        )

    @given(gen=_GENERATOR_CONFIGS)
    @settings(max_examples=15, deadline=None)
    def test_binary_roundtrip_of_generated_programs(self, gen):
        program = generate_program(gen)
        decoded = decode_program(program.encode())
        assert encode_program(decoded) == program.encode()

    @given(
        gen=_GENERATOR_CONFIGS,
        k=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=15, deadline=None)
    def test_remember_sets_stay_consistent(self, gen, k):
        program = generate_program(gen)
        cfg = build_cfg(program)
        manager = CodeCompressionManager(
            cfg,
            SimulationConfig(decompression="ondemand", k_compress=k,
                             **_FAST),
        )
        manager.run()
        assert manager.remember.validate() == []

    @given(gen=_GENERATOR_CONFIGS)
    @settings(max_examples=10, deadline=None)
    def test_kedge_k1_minimises_memory(self, gen):
        """k=1 is the most aggressive setting: its average footprint is a
        lower bound among k values (Section 3's monotone claim)."""
        program = generate_program(gen)
        cfg = build_cfg(program)
        averages = []
        for k in (1, 4, 16):
            result = CodeCompressionManager(
                cfg,
                SimulationConfig(decompression="ondemand", k_compress=k,
                                 **_FAST),
            ).run()
            averages.append(result.average_footprint)
        assert averages[0] <= averages[1] + 1e-9
        assert averages[1] <= averages[2] + 1e-9
