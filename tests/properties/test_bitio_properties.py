"""Property-based tests for :mod:`repro.compress.bitio`.

Randomized value/width round-trips (including the gamma/unary codes and
width-boundary values) plus the overflow/underflow error paths, run
against both the scalar (``write_bits``/``read_bits``) and the bulk
(``write_run``/``read_run``) paths.  The two paths must be
byte-identical: a bulk write round-trips through a scalar read and vice
versa.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compress.bitio import BitIOError, BitReader, BitWriter

#: A run of fixed-width fields: (width, values) with every value in
#: range, widths crossing the bulk chunk boundary (2048 // width).
_runs = st.integers(min_value=1, max_value=40).flatmap(
    lambda width: st.tuples(
        st.just(width),
        st.lists(
            st.integers(min_value=0, max_value=(1 << width) - 1),
            max_size=600,
        ),
    )
)

#: Mixed-width field sequences for scalar round-trips, biased toward
#: the boundary values 0 and 2**width - 1.
_fields = st.lists(
    st.integers(min_value=0, max_value=66).flatmap(
        lambda width: st.tuples(
            st.just(width),
            st.one_of(
                st.just(0),
                st.just((1 << width) - 1 if width else 0),
                st.integers(min_value=0, max_value=(1 << width) - 1),
            ),
        )
    ),
    max_size=80,
)


class TestRoundTrips:
    @given(_fields)
    @settings(max_examples=200, deadline=None)
    def test_scalar_write_read_roundtrip(self, fields):
        writer = BitWriter()
        for width, value in fields:
            writer.write_bits(value, width)
        assert writer.bit_length == sum(w for w, _ in fields)
        reader = BitReader(writer.getvalue())
        for width, value in fields:
            assert reader.read_bits(width) == value

    @given(_runs)
    @settings(max_examples=200, deadline=None)
    def test_bulk_write_scalar_read_roundtrip(self, run):
        width, values = run
        writer = BitWriter()
        writer.write_run(values, width)
        assert writer.bit_length == width * len(values)
        reader = BitReader(writer.getvalue())
        assert [reader.read_bits(width) for _ in values] == values

    @given(_runs)
    @settings(max_examples=200, deadline=None)
    def test_scalar_write_bulk_read_roundtrip(self, run):
        width, values = run
        writer = BitWriter()
        for value in values:
            writer.write_bits(value, width)
        reader = BitReader(writer.getvalue())
        assert reader.read_run(width, len(values)) == values
        assert reader.bit_position == width * len(values)

    @given(_runs, st.integers(min_value=0, max_value=17))
    @settings(max_examples=150, deadline=None)
    def test_bulk_paths_byte_identical_after_misalignment(
            self, run, lead):
        # A leading unaligned field must not disturb the bulk layout.
        width, values = run
        bulk = BitWriter()
        bulk.write_bits((1 << lead) - 1, lead)
        bulk.write_run(values, width)
        scalar = BitWriter()
        scalar.write_bits((1 << lead) - 1, lead)
        for value in values:
            scalar.write_bits(value, width)
        assert bulk.getvalue() == scalar.getvalue()
        reader = BitReader(bulk.getvalue())
        reader.skip_bits(lead)
        assert reader.read_run(width, len(values)) == values

    @given(st.lists(st.integers(min_value=0, max_value=60),
                    max_size=40))
    @settings(max_examples=150, deadline=None)
    def test_unary_roundtrip(self, values):
        writer = BitWriter()
        for value in values:
            writer.write_unary(value)
        reader = BitReader(writer.getvalue())
        for value in values:
            assert reader.read_unary() == value

    @given(st.lists(st.integers(min_value=1, max_value=1 << 24),
                    max_size=40))
    @settings(max_examples=150, deadline=None)
    def test_gamma_roundtrip(self, values):
        writer = BitWriter()
        for value in values:
            writer.write_gamma(value)
        reader = BitReader(writer.getvalue())
        for value in values:
            assert reader.read_gamma() == value

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=60, deadline=None)
    def test_width_zero_fields_are_free(self, count):
        writer = BitWriter()
        writer.write_run([0] * count, 0)
        assert writer.bit_length == 0
        assert BitReader(b"").read_run(0, count) == [0] * count


class TestOverflow:
    @given(st.integers(min_value=0, max_value=66))
    @settings(max_examples=60, deadline=None)
    def test_value_too_wide_rejected(self, width):
        writer = BitWriter()
        with pytest.raises(BitIOError, match="does not fit"):
            writer.write_bits(1 << width, width)
        # The failed write must not have corrupted the stream.
        writer.write_bits((1 << width) - 1, width)
        assert writer.bit_length == width

    @given(st.integers(min_value=1, max_value=40),
           st.integers(min_value=0, max_value=30))
    @settings(max_examples=60, deadline=None)
    def test_bulk_value_too_wide_rejected(self, width, good):
        writer = BitWriter()
        values = [0] * good + [1 << width]
        with pytest.raises(BitIOError, match="does not fit"):
            writer.write_run(values, width)

    def test_negative_inputs_rejected(self):
        writer = BitWriter()
        with pytest.raises(BitIOError):
            writer.write_bits(-1, 4)
        with pytest.raises(BitIOError):
            writer.write_bits(0, -1)
        with pytest.raises(BitIOError):
            writer.write_run([0], -1)
        with pytest.raises(BitIOError):
            writer.write_run([-1], 4)
        with pytest.raises(BitIOError):
            writer.write_unary(-1)
        with pytest.raises(BitIOError):
            writer.write_gamma(0)
        with pytest.raises(BitIOError):
            writer.write_bit(2)

    def test_width_zero_rejects_nonzero_values(self):
        writer = BitWriter()
        with pytest.raises(BitIOError, match="does not fit"):
            writer.write_bits(1, 0)
        with pytest.raises(BitIOError, match="does not fit"):
            writer.write_run([0, 0, 1], 0)


class TestUnderflow:
    @given(st.binary(max_size=32), st.integers(min_value=1,
                                               max_value=64))
    @settings(max_examples=100, deadline=None)
    def test_scalar_read_past_end_raises(self, data, extra):
        reader = BitReader(data)
        with pytest.raises(BitIOError, match="exhausted"):
            reader.read_bits(reader.bits_remaining + extra)
        # Failed reads consume nothing.
        assert reader.bit_position == 0
        reader.read_bits(reader.bits_remaining)

    @given(st.binary(max_size=32), st.integers(min_value=1,
                                               max_value=20))
    @settings(max_examples=100, deadline=None)
    def test_bulk_read_past_end_raises_without_consuming(
            self, data, width):
        reader = BitReader(data)
        fits = reader.bits_remaining // width
        with pytest.raises(BitIOError, match="exhausted"):
            reader.read_run(width, fits + 1)
        assert reader.bit_position == 0
        # The same reader still serves the fields that do fit.
        fresh = BitReader(data)
        assert reader.read_run(width, fits) == \
            [fresh.read_bits(width) for _ in range(fits)]
        assert reader.bit_position == width * fits

    def test_bulk_read_negative_arguments_rejected(self):
        reader = BitReader(b"\xff")
        with pytest.raises(BitIOError):
            reader.read_run(-1, 1)
        with pytest.raises(BitIOError):
            reader.read_run(1, -1)

    def test_skip_and_bit_read_past_end_raise(self):
        reader = BitReader(b"\xaa")
        reader.skip_bits(8)
        with pytest.raises(BitIOError):
            reader.read_bit()
        with pytest.raises(BitIOError):
            reader.skip_bits(1)
