"""Differential correctness harness for layered codec pipelines.

A pipeline codec must be transparent to program semantics exactly like
a flat codec, whichever execution path computes the cell:

* the interpreting **machine** engine,
* the **trace** engine's batched replay kernel, and
* the trace engine with batching forced off (the per-block loop)

must all produce byte-identical ``canonical_json`` for a grid of
pipelines x suite workloads (the result meta's ``engine`` label is
normalised — it records which engine ran, everything else must match).
On top of that, cells served from the experiment store must be
byte-equal to recomputation, pipeline specs and the ``pipeline-search``
policy included — the fingerprint expands pipeline specs structurally,
so both spellings of one pipeline share a single cache entry.
"""

import json

import pytest

from repro import api
from repro.core import SimulationConfig
from repro.workloads import get_workload
import repro.core.manager as manager_module

_FAST = dict(trace_events=False, record_trace=False)

_WORKLOADS = ("composite", "cold_paths", "fsm")

_PIPELINES = (
    "stride:4|shared-dict",
    "delta|huffman",
    "mtf|shared-huffman",
    "dict:16|delta|lzw",
)


def _configs():
    return [
        SimulationConfig(codec=spec, **_FAST) for spec in _PIPELINES
    ]


def _canonical(results) -> str:
    """canonical_json with the engine label normalised away."""
    payload = json.loads(results.canonical_json())
    payload["meta"].pop("engine", None)
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    )


class TestEngineEquivalence:
    @pytest.mark.parametrize("name", _WORKLOADS)
    def test_machine_trace_replay_identical(self, name, monkeypatch):
        machine = api.run_grid([name], _configs(), engine="machine")
        trace = api.run_grid([name], _configs(), engine="trace")
        monkeypatch.setattr(
            manager_module, "try_batched_replay", lambda m: False
        )
        unbatched = api.run_grid([name], _configs(), engine="trace")
        assert not machine.failures()
        assert _canonical(machine) == _canonical(trace), name
        assert _canonical(trace) == _canonical(unbatched), name

    def test_pipeline_search_machine_equals_trace(self):
        workload = get_workload("cold_paths")
        profile = api.profile_workload(workload)
        configs = [SimulationConfig(
            codec="shared-dict", assignment="pipeline-search",
            profile=profile, **_FAST,
        )]
        machine = api.run_grid([workload], configs, engine="machine")
        trace = api.run_grid([workload], configs, engine="trace")
        assert not machine.failures()
        assert _canonical(machine) == _canonical(trace)


class TestStoreEquivalence:
    def test_cached_cells_byte_equal_recomputation(self, tmp_path):
        store = str(tmp_path / "store")
        uncached = api.run_grid(
            _WORKLOADS, _configs(), engine="trace"
        )
        first = api.run_grid(
            _WORKLOADS, _configs(), engine="trace", store=store
        )
        second = api.run_grid(
            _WORKLOADS, _configs(), engine="trace", store=store
        )
        cells = len(uncached.runs)
        assert second.meta["cache"]["hits"] == cells
        assert first.canonical_json() == uncached.canonical_json()
        assert second.canonical_json() == uncached.canonical_json()

    def test_spec_spellings_share_one_cache_entry(self, tmp_path):
        store = str(tmp_path / "store")
        compact = SimulationConfig(codec="delta|huffman", **_FAST)
        spelled = SimulationConfig(
            codec='{"layers": ["delta"], "entropy": "huffman"}',
            **_FAST,
        )
        first = api.run_grid(
            ["fsm"], [compact], engine="trace", store=store
        )
        second = api.run_grid(
            ["fsm"], [spelled], engine="trace", store=store
        )
        assert first.meta["cache"]["misses"] == 1
        assert second.meta["cache"]["hits"] == 1
        assert first.canonical_json() == second.canonical_json()
