"""Integration tests for the sweep service over real HTTP.

A live ``ServerThread`` (the same server ``python -m repro serve``
runs) on a temp store, exercised through ``ServiceClient``.  The
contracts pinned here:

* a served ``/result`` body is **byte-identical** to a local
  ``run_experiment`` on the same store;
* ``/metrics``' ``store`` section agrees exactly with
  ``repro store stats --json`` for the same directory;
* two clients submitting overlapping grids concurrently compute every
  overlapping cell **at most once** (store ``puts`` == distinct
  cells), and both results are byte-equal to serial recomputation;
* SSE streams one event per cell plus a final ``end`` frame;
* graceful shutdown leaves a journal a second server resumes from.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import api
from repro.cli import main as cli_main
from repro.service import (
    ServerThread,
    ServiceClient,
    ServiceClientError,
)

SPEC = {
    "name": "it-service",
    "workloads": ["fib", "gcd"],
    "base": {"codec": "shared-dict", "decompression": "ondemand"},
    "axes": {"grid": {"k_compress": [1, "inf"]}},
    "engine": "trace",
}


@pytest.fixture()
def server(tmp_path):
    with ServerThread(store=str(tmp_path / "store")) as srv:
        yield srv


@pytest.fixture()
def client(server):
    c = ServiceClient(server.host, server.port)
    yield c
    c.close()


class TestRoundTrip:
    def test_submit_wait_result_byte_identical_to_local_run(
        self, server, client
    ):
        reply = client.submit(SPEC)
        assert reply["state"] in ("queued", "running")
        assert reply["cells"] == 4
        final = client.wait(reply["job"])
        assert final["state"] == "done"
        assert final["progress"]["done"] == 4
        served = client.result(reply["job"])

        local = api.run_experiment(
            api.ExperimentSpec.from_dict(SPEC),
            store=server.manager.store.root,
        )
        assert served == local.canonical_json()

    def test_resubmit_dedups_without_recompute(self, server, client):
        first = client.submit(SPEC)
        client.wait(first["job"])
        puts_before = server.manager.store.stats()["puts"]
        again = client.submit(SPEC)
        assert again["deduped"] and again["job"] == first["job"]
        assert client.result(again["job"]) == client.result(
            first["job"]
        )
        assert server.manager.store.stats()["puts"] == puts_before

    def test_healthz(self, server, client):
        health = client.healthz()
        assert health["ok"] is True
        assert health["store"] == server.manager.store.root
        assert set(health["jobs"]) == {
            "queued", "running", "done", "failed",
        }


class TestErrorReplies:
    def test_bad_spec_is_400(self, client):
        with pytest.raises(ServiceClientError) as err:
            client.submit({"workloads": ["no-such-workload"]})
        assert err.value.status == 400

    def test_non_json_body_is_400(self, client):
        with pytest.raises(ServiceClientError) as err:
            client._json("POST", "/jobs", b"not json")
        assert err.value.status == 400

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceClientError) as err:
            client.status("j999-nope")
        assert err.value.status == 404
        with pytest.raises(ServiceClientError) as err:
            client.result("j999-nope")
        assert err.value.status == 404

    def test_unknown_path_is_404(self, client):
        with pytest.raises(ServiceClientError) as err:
            client._json("GET", "/nope")
        assert err.value.status == 404

    def test_result_of_unfinished_job_is_409(
        self, server, client, monkeypatch
    ):
        from repro.service.jobs import JobManager

        gate = threading.Event()
        picked_up = threading.Event()
        real_execute = JobManager._execute

        def gated_execute(self, job):
            picked_up.set()
            gate.wait(30.0)
            real_execute(self, job)

        monkeypatch.setattr(JobManager, "_execute", gated_execute)
        reply = client.submit({**SPEC, "name": "it-409"})
        assert picked_up.wait(30.0)
        with pytest.raises(ServiceClientError) as err:
            client.result(reply["job"])
        assert err.value.status == 409
        gate.set()
        client.wait(reply["job"])


class TestMetricsAgreement:
    def test_metrics_store_section_equals_cli_store_stats_json(
        self, server, client, capsys
    ):
        reply = client.submit(SPEC)
        client.wait(reply["job"])  # quiesce: nothing in flight
        metrics = client.metrics()

        code = cli_main([
            "store", "stats",
            "--store", server.manager.store.root, "--json",
        ])
        assert code == 0
        cli_stats = json.loads(capsys.readouterr().out)
        assert metrics["store"] == cli_stats

    def test_metrics_shape(self, server, client):
        client.healthz()
        metrics = client.metrics()
        assert set(metrics) == {
            "service", "queue_depth", "jobs", "store",
        }
        service = metrics["service"]
        assert "GET /healthz" in service["requests"]
        histogram = service["requests"]["GET /healthz"]
        assert histogram["count"] >= 1
        assert sum(histogram["buckets_ms"].values()) == \
            histogram["count"]
        assert service["responses"].get("200", 0) >= 1


class TestConcurrentOverlap:
    def test_overlapping_grids_compute_each_cell_at_most_once(
        self, server
    ):
        # 2 workloads x k in {1,2,4} and k in {2,4,8}: the overlap
        # (k=2,4) is 4 cells, the union 8 distinct cells.
        spec_a = {**SPEC, "name": "it-overlap-a",
                  "axes": {"grid": {"k_compress": [1, 2, 4]}}}
        spec_b = {**SPEC, "name": "it-overlap-b",
                  "axes": {"grid": {"k_compress": [2, 4, 8]}}}
        results = {}

        def run_client(name, spec):
            with ServiceClient(server.host, server.port) as c:
                reply = c.submit(spec)
                c.wait(reply["job"])
                results[name] = c.result(reply["job"])

        threads = [
            threading.Thread(target=run_client, args=("a", spec_a)),
            threading.Thread(target=run_client, args=("b", spec_b)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # At-most-once: every distinct cell was stored exactly once.
        stats = server.manager.store.stats()
        assert stats["puts"] == 8
        assert stats["cells"] == 8

        # Both results byte-equal a serial recomputation (fresh
        # store, no service involved).
        for name, spec in (("a", spec_a), ("b", spec_b)):
            serial = api.run_experiment(
                api.ExperimentSpec.from_dict(spec)
            )
            assert results[name] == serial.canonical_json()


class TestEvents:
    def test_sse_streams_every_cell_then_end(self, server, client):
        reply = client.submit(SPEC)
        client.wait(reply["job"])
        events = list(client.events(reply["job"]))
        # One frame per cell plus the final snapshot frame.
        assert len(events) == 5
        cells = events[:-1]
        assert [e["seq"] for e in cells] == [0, 1, 2, 3]
        assert all(e["ok"] for e in cells)
        assert {e["workload"] for e in cells} == {"fib", "gcd"}
        assert events[-1]["state"] == "done"

    def test_events_for_unknown_job_is_404(self, client):
        with pytest.raises(ServiceClientError) as err:
            list(client.events("j999-nope"))
        assert err.value.status == 404


class TestShutdownResume:
    def test_second_server_resumes_the_journal(self, tmp_path):
        root = str(tmp_path / "store")
        with ServerThread(store=root) as first:
            with ServiceClient(first.host, first.port) as c:
                reply = c.submit(SPEC)
                c.wait(reply["job"])
                served = c.result(reply["job"])

        with ServerThread(store=root) as second:
            with ServiceClient(second.host, second.port) as c:
                again = c.submit(SPEC)
                assert again["deduped"]
                assert again["job"] == reply["job"]
                assert c.result(again["job"]) == served
