"""Integration test replaying the paper's Figure 5 walk-through.

Figure 5 traces the access pattern B0, B1, B0, B1, B3 under on-demand
decompression with k=2 compression:

1. PC at B0 (compressed)  -> exception, decompress B0'
2. enter B1 (compressed)  -> exception, decompress B1', patch B0's branch
3. re-enter B0 (resident) -> exception handler just patches B1''s branch
4. re-enter B1 (resident, already patched) -> direct branch, no exception
5. enter B3: the 2nd edge after B0's last visit -> delete B0',
   decompress B3'

We build exactly that program shape, force that trace, and assert the
event sequence and counter effects.
"""

import pytest

from repro.cfg import build_cfg
from repro.core import SimulationConfig
from repro.core.manager import CodeCompressionManager
from repro.isa import assemble
from repro.runtime import EventKind

#: Produces exactly the paper's access pattern B0, B1, B0, B1, B3:
#: B0 falls through to B1; B1 loops back to B0 once, then falls through
#: to B3.
_FIGURE5_SOURCE = """
b0:
    addi r1, r1, 1
b1:
    addi r3, r3, 5
    slti r2, r1, 2
    bne  r2, r0, b0
b3:
    addi r4, r4, 7
    halt
"""


@pytest.fixture
def manager():
    program = assemble(_FIGURE5_SOURCE, "figure5", entry_label="b0")
    cfg = build_cfg(program)
    manager = CodeCompressionManager(
        cfg,
        SimulationConfig(
            codec="shared-dict",
            decompression="ondemand",
            k_compress=2,
        ),
    )
    manager.run()
    return manager


def _ids(manager):
    cfg = manager.cfg
    by_label = {b.label: b.block_id for b in cfg.blocks if b.label}
    return by_label["b0"], by_label["b1"], by_label["b3"]


class TestFigure5:
    def test_block_trace_matches_paper(self, manager):
        b0, b1, b3 = _ids(manager)
        assert manager.block_trace == [b0, b1, b0, b1, b3]

    def test_initial_fetch_faults(self, manager):
        b0, _, _ = _ids(manager)
        first_fault = manager.log.of_kind(EventKind.FAULT)[0]
        assert first_fault.block_id == b0
        assert first_fault.cycle == 0

    def test_fault_sequence(self, manager):
        b0, b1, b3 = _ids(manager)
        faults = [e.block_id for e in manager.log.of_kind(EventKind.FAULT)]
        # full decompression faults: B0 once, B1 once, B3 once
        assert faults == [b0, b1, b3]

    def test_reentry_uses_patch_not_decompression(self, manager):
        b0, b1, b3 = _ids(manager)
        decompressions = [
            e.block_id
            for e in manager.log.of_kind(EventKind.DECOMPRESS_DONE)
        ]
        # each block decompressed exactly once despite revisits
        assert decompressions == [b0, b1, b3]
        # B0 re-entry produced a patch event (Figure 5 step 6)
        patches = [
            e.block_id for e in manager.log.of_kind(EventKind.PATCH)
        ]
        assert b0 in patches

    def test_b0_recompressed_when_entering_b3(self, manager):
        b0, _, b3 = _ids(manager)
        recompressions = manager.log.of_kind(EventKind.RECOMPRESS)
        assert [e.block_id for e in recompressions] == [b0]
        # the deletion happens on the same cycle as the fault into B3
        # (the 2nd edge after B0's last execution is the edge into B3)
        b3_fault = [
            e for e in manager.log.of_kind(EventKind.FAULT)
            if e.block_id == b3
        ][0]
        assert recompressions[0].cycle == b3_fault.cycle

    def test_second_b1_entry_is_free(self, manager):
        """Figure 5 step (7): B0' -> B1' branch needs no exception."""
        _, b1, _ = _ids(manager)
        b1_events = manager.log.for_block(b1)
        kinds = [e.kind for e in b1_events]
        # exactly one FAULT and one PATCH for B1 across both visits
        assert kinds.count(EventKind.FAULT) == 1
        assert kinds.count(EventKind.PATCH) == 1

    def test_footprint_returns_toward_minimum(self, manager):
        # after B0' is deleted, footprint = compressed + B1' + B3'
        assert manager.image is not None
        final = manager.footprint.samples[-1][1]
        minimum = manager.image.compressed_image_size
        assert final < minimum + manager.cfg.total_size_bytes()
        assert final > minimum  # B1/B3 copies still resident

    def test_machine_result_correct(self, manager):
        # r3 accumulated 5 per B1 visit (2 visits), r4 = 7
        assert manager.machine.registers[3] == 10
        assert manager.machine.registers[4] == 7

    def test_compressed_area_addresses_never_move(self, manager):
        """Section 5: 'the locations of the compressed blocks do not
        change during execution'."""
        image = manager.image
        fresh = type(image)(manager.cfg, manager.codec)
        assert [b.compressed_addr for b in image.blocks] == \
            [b.compressed_addr for b in fresh.blocks]
