"""Golden-result pin for the default memory hierarchy.

The manager decomposition (timing/residency subsystems + the explicit
memory-hierarchy layer) must not change a single byte of what the
simulator computes under the default ``flat`` preset.  This test runs an
E1-style k-edge grid and compares :meth:`ResultSet.canonical_json`
against a committed golden file, so any future drift in metrics,
counters, or serialisation shape fails loudly.

Regenerate (only after deliberately changing simulation semantics or
the result schema) by calling :func:`_run_grid` and writing its
``canonical_json()`` to :data:`GOLDEN`.
"""

import json
import pathlib

from repro import api
from repro.core import SimulationConfig

GOLDEN = (
    pathlib.Path(__file__).parent.parent
    / "golden" / "e1_kedge_default.json"
)

_WORKLOADS = ("composite", "cold_paths", "fib")
_K_VALUES = (1, 2, 4, 8, None)


def _run_grid() -> api.ResultSet:
    configs = [
        SimulationConfig(
            codec="shared-dict", decompression="ondemand",
            k_compress=k, trace_events=False, record_trace=False,
        )
        for k in _K_VALUES
    ]
    return api.run_grid(
        list(_WORKLOADS), configs, engine="trace", store=False
    )


class TestGoldenResults:
    def test_default_hierarchy_grid_matches_golden(self):
        result = _run_grid()
        assert not result.failures()
        got = result.canonical_json()
        want = GOLDEN.read_text().strip()
        if got != want:
            # Pinpoint the first divergence for a readable failure.
            got_data = json.loads(got)
            want_data = json.loads(want)
            assert got_data == want_data, (
                "canonical result drifted from the golden file; if the "
                "change is deliberate, regenerate tests/golden/"
            )
            raise AssertionError(
                "canonical JSON text differs (same data, different "
                "serialisation) — the canonical form must be stable"
            )

    def test_golden_cells_are_default_hierarchy(self):
        data = json.loads(GOLDEN.read_text())
        assert data["cells"], "golden file has no cells"
        for cell in data["cells"]:
            assert cell["config"]["hierarchy"] == "flat"

    def test_golden_config_keys_match_live_schema(self):
        # A new SimulationConfig field changes every cell's config
        # signature: the golden file must then be deliberately
        # regenerated, never silently left stale.  (Pipeline codecs
        # deliberately added no field — a pipeline spec is a value of
        # the existing ``codec`` axis.)
        import dataclasses

        from repro.core import SimulationConfig as Config

        live = {f.name for f in dataclasses.fields(Config)}
        live |= {"strategy_name", "label"}
        data = json.loads(GOLDEN.read_text())
        for cell in data["cells"]:
            assert set(cell["config"]) == live
