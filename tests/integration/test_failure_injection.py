"""Failure-injection tests: corrupted payloads, hostile configurations,
and resource-exhaustion paths must fail loudly, never silently."""

import pytest

from repro.cfg import build_cfg
from repro.compress import CodecError, get_codec
from repro.core import SimulationConfig
from repro.core.manager import CodeCompressionManager
from repro.isa import assemble
from repro.memory import AllocationError, InPlaceImage, SeparateAreaImage
from repro.workloads import get_workload

_FAST = dict(trace_events=False, record_trace=False)


class TestPayloadCorruption:
    def test_verify_block_detects_tampering(self, loop_cfg):
        image = SeparateAreaImage(loop_cfg, get_codec("shared-dict"))
        assert image.verify_block(0)
        block = image.block(0)
        tampered = bytearray(block.compressed_payload)
        tampered[0] ^= 0x01  # flip the tag
        block.compressed_payload = bytes(tampered)
        assert not image.verify_block(0)

    def test_corrupted_stream_raises_not_garbage(self, loop_cfg):
        codec = get_codec("shared-dict")
        image = SeparateAreaImage(loop_cfg, codec)
        block = image.block(1)
        if block.compressed_payload[0] == 1:  # coded payload
            truncated = block.compressed_payload[:1]
            with pytest.raises(CodecError):
                codec.decompress_block(
                    truncated, block.uncompressed_size
                )


class TestResourceExhaustion:
    def test_bounded_image_raises_on_overflow(self, loop_cfg):
        image = SeparateAreaImage(
            loop_cfg, get_codec("shared-dict"), capacity=12
        )
        image.decompress(0)  # 8 bytes
        with pytest.raises(AllocationError):
            image.decompress(1)  # 12 bytes, does not fit

    def test_inplace_compacts_under_pressure(self, figure1_cfg):
        # capacity just above the uncompressed total forces compaction
        total = figure1_cfg.total_size_bytes()
        image = InPlaceImage(
            figure1_cfg, get_codec("shared-dict"),
            capacity=total + 64,
        )
        # churn decompression to fragment the area
        for _ in range(6):
            for block in figure1_cfg.blocks:
                image.decompress(block.block_id)
            for block in figure1_cfg.blocks:
                image.release(block.block_id)
        # survived (possibly via compaction); verify integrity
        for block in figure1_cfg.blocks:
            assert image.verify_block(block.block_id)

    def test_runaway_program_caught_by_step_guard(self):
        cfg = build_cfg(
            assemble("main:\nloop:\n    jmp loop", "spin")
        )
        manager = CodeCompressionManager(
            cfg, SimulationConfig(max_steps=1000, **_FAST)
        )
        from repro.runtime import MachineError

        with pytest.raises(MachineError, match="max_steps"):
            manager.run()


class TestHostileConfigurations:
    def test_extreme_k_values_still_correct(self):
        workload = get_workload("gcd")
        cfg = build_cfg(workload.program)
        for k_compress, k_decompress in ((1, 50), (1000, 1), (1000, 50)):
            manager = CodeCompressionManager(
                cfg,
                SimulationConfig(
                    decompression="pre-all",
                    k_compress=k_compress, k_decompress=k_decompress,
                    **_FAST,
                ),
            )
            manager.run()
            assert workload.validate(manager.machine) == []

    def test_zero_cost_model_is_stable(self):
        workload = get_workload("fib")
        cfg = build_cfg(workload.program)
        manager = CodeCompressionManager(
            cfg,
            SimulationConfig(fault_cycles=0, patch_cycles=0, **_FAST),
        )
        result = manager.run()
        assert workload.validate(manager.machine) == []
        assert result.total_cycles >= result.execution_cycles

    def test_full_contention_is_worst_case_but_correct(self):
        workload = get_workload("crc32")
        cfg = build_cfg(workload.program)
        manager = CodeCompressionManager(
            cfg,
            SimulationConfig(decompression="pre-all", contention=1.0,
                             **_FAST),
        )
        result = manager.run()
        assert workload.validate(manager.machine) == []
        assert result.counters.stall_cycles >= \
            result.counters.background_decompress_cycles

    def test_tiny_prefetch_backlog_degrades_to_ondemand(self):
        workload = get_workload("fsm")
        cfg = build_cfg(workload.program)
        starved = CodeCompressionManager(
            cfg,
            SimulationConfig(decompression="pre-all", k_compress=16,
                             max_prefetch_backlog=1, **_FAST),
        ).run()
        ondemand = CodeCompressionManager(
            cfg,
            SimulationConfig(decompression="ondemand", k_compress=16,
                             **_FAST),
        ).run()
        # a starved prefetcher cannot be much *worse* than pure on-demand
        assert starved.total_cycles <= ondemand.total_cycles * 1.25
