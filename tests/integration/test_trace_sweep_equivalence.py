"""Trace-driven sweep metrics must equal machine-driven metrics.

The shared-artifact sweep engine (``sweep(..., engine="trace")``)
replays one recorded block trace per workload instead of interpreting
every grid cell.  Because compression policy is transparent to program
semantics, every metric the experiments consume — cycles, counters,
footprint timeline, image sizes — must come out *exactly* equal.
These tests pin that contract on the kernel suite, including the E12
policy-injection path.
"""

import pytest

from repro.analysis import sweep
from repro.cfg import build_cfg
from repro.core import SimulationConfig
from repro.core.manager import CodeCompressionManager
from repro.runtime import PreparedTrace, simulate_trace
from repro.strategies import RecencyWindowCompression
from repro.workloads import get_workload

_FAST = dict(trace_events=False, record_trace=False)

#: Kernel suite slice used for the grid comparison (kept small enough
#: for test time; the bench compares a larger grid on every run).
_WORKLOADS = ("composite", "cold_paths", "fsm", "gcd")

_CONFIGS = [
    SimulationConfig(decompression="ondemand", k_compress=1),
    SimulationConfig(decompression="ondemand", k_compress=8),
    SimulationConfig(decompression="ondemand", k_compress=None),
    SimulationConfig(decompression="pre-all", k_compress=8,
                     k_decompress=2),
    SimulationConfig(decompression="pre-single", k_compress=8,
                     k_decompress=2),
]

_METRICS = (
    "total_cycles", "execution_cycles", "average_footprint",
    "peak_footprint", "average_saving", "peak_saving",
    "cycle_overhead", "compressed_size", "uncompressed_size",
)


def _assert_results_equal(left, right, context):
    for metric in _METRICS:
        assert getattr(left, metric) == getattr(right, metric), \
            f"{context}: {metric}"
    assert left.counters == right.counters, f"{context}: counters"
    assert left.footprint.samples == right.footprint.samples, \
        f"{context}: footprint timeline"


class TestSweepEngineEquivalence:
    @pytest.mark.parametrize("name", _WORKLOADS)
    def test_grid_metrics_identical(self, name):
        workload = get_workload(name)
        machine = sweep([workload], _CONFIGS, engine="machine")
        trace = sweep([workload], _CONFIGS, engine="trace")
        assert len(machine.runs) == len(trace.runs)
        for m_run, t_run in zip(machine.runs, trace.runs):
            assert m_run.config.strategy_name == \
                t_run.config.strategy_name
            _assert_results_equal(
                m_run.result, t_run.result,
                f"{name}/{m_run.config.strategy_name}",
            )
            assert t_run.ok == m_run.ok

    def test_trace_engine_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown sweep engine"):
            sweep([get_workload("gcd")], _CONFIGS[:1], engine="warp")

    def test_policy_injection_replay_matches_machine(self):
        # The E12 path: a non-config compression policy injected into a
        # trace replay must match the interpreted run with the same
        # policy.
        workload = get_workload("cold_paths")
        cfg = build_cfg(workload.program)
        recorder = CodeCompressionManager(
            cfg,
            SimulationConfig(decompression="none", trace_events=False,
                             record_trace=True),
        )
        recorder.run()
        prepared = PreparedTrace(cfg, recorder.block_trace)
        for window in (2, 4, 8):
            config = SimulationConfig(
                decompression="ondemand", k_compress=1, **_FAST
            )
            interpreted = CodeCompressionManager(
                cfg, config,
                compression_policy=RecencyWindowCompression(window),
            ).run()
            replayed = simulate_trace(
                cfg, prepared, config,
                compression_policy=RecencyWindowCompression(window),
            )
            _assert_results_equal(
                interpreted, replayed, f"window={window}"
            )
