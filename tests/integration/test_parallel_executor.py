"""Executor transparency: parallel == serial, byte for byte.

The acceptance bar for the repro.api executor layer: running the E1
k-edge grid with ``ParallelExecutor(jobs=4)`` must produce a ResultSet
equal to ``SerialExecutor`` — same cells in the same order, same
metrics, same serialised JSON once the execution-provenance block
(executor, jobs, wall-clock) is dropped.
"""

from __future__ import annotations

import pytest

from repro import api
from repro.core import SimulationConfig
from repro.log import parse_kv

#: The E1 grid: the experiment kernels x the k-edge sweep (trace
#: engine), exactly as benchmarks/test_e1_kedge_sweep.py runs it.
E1_WORKLOADS = (
    "composite", "cold_paths", "modular", "fsm",
    "dijkstra", "quicksort", "adpcm", "crc32",
)
E1_K_VALUES = (1, 2, 4, 8, 16, 32, "inf")


@pytest.fixture(scope="module")
def e1_spec():
    return api.ExperimentSpec(
        name="e1-parallel-equivalence",
        workloads=list(E1_WORKLOADS),
        base={"codec": "shared-dict", "decompression": "ondemand"},
        axes=api.grid(k_compress=list(E1_K_VALUES)),
        engine="trace",
    )


@pytest.fixture(scope="module")
def serial_result(e1_spec):
    return api.run_experiment(e1_spec, executor="serial")


class TestParallelEqualsSerial:
    def test_e1_grid_identical_under_4_jobs(self, e1_spec,
                                            serial_result):
        parallel = api.run_experiment(
            e1_spec, executor=api.ParallelExecutor(jobs=4)
        )
        assert parallel.meta["executor"] == "parallel"
        assert parallel.meta["jobs"] == 4
        assert serial_result.meta["executor"] == "serial"

        assert len(parallel) == len(serial_result) == \
            len(E1_WORKLOADS) * len(E1_K_VALUES)
        # Same cells, same order.
        assert [(r.workload, r.config.strategy_name)
                for r in parallel.runs] == \
            [(r.workload, r.config.strategy_name)
             for r in serial_result.runs]
        # Same metrics, cell by cell.
        for mine, ref in zip(parallel.runs, serial_result.runs):
            assert mine.result.summary() == ref.result.summary()
            assert mine.validation == ref.validation
        # Same serialised JSON minus the execution/timing block.
        assert parallel.to_json(include_execution=False) == \
            serial_result.to_json(include_execution=False)

    def test_no_validation_failures(self, serial_result):
        assert serial_result.failures() == []


class TestEngineAgreementThroughApi:
    def test_machine_and_trace_engines_agree(self):
        spec_kwargs = dict(
            workloads=["fsm", "crc32"],
            base={"codec": "shared-dict", "decompression": "ondemand"},
            axes=api.grid(k_compress=[2, 8]),
        )
        machine = api.run_experiment(
            api.ExperimentSpec(engine="machine", **spec_kwargs)
        )
        trace = api.run_experiment(
            api.ExperimentSpec(engine="trace", **spec_kwargs)
        )
        assert machine.to_dict(include_execution=False)["cells"] == \
            trace.to_dict(include_execution=False)["cells"]


class TestUnregisteredWorkloadFallback:
    def test_parallel_runs_unpicklable_workload_locally(self):
        # A Workload whose oracle is a closure cannot be shipped to a
        # worker process; the parallel executor must fall back to
        # in-process execution and still match serial output.
        from repro.runtime.machine import Machine
        from repro.workloads import Workload, generate_sized_program, \
            get_workload

        marker = []  # captured: makes the closure unpicklable

        def check(machine: Machine):
            marker.append(1)
            return []

        synth = Workload(
            name="synth-local",
            description="generated app",
            program=generate_sized_program(seed=3, target_bytes=2000),
            check=check,
        )
        workloads = [get_workload("fib"), synth]
        configs = [
            SimulationConfig(decompression="ondemand", k_compress=k,
                             trace_events=False, record_trace=False)
            for k in (1, 4)
        ]
        serial = api.run_grid(workloads, configs, engine="trace",
                              executor="serial")
        parallel = api.run_grid(workloads, configs, engine="trace",
                                executor="parallel", jobs=2)
        assert parallel.to_json(include_execution=False) == \
            serial.to_json(include_execution=False)
        assert [r.workload for r in parallel.runs] == \
            ["fib", "fib", "synth-local", "synth-local"]


class _FakePool:
    """A stand-in process pool: runs submissions inline, records its
    shutdown arguments, and can simulate a broken pool (every future
    failing the way a died worker does)."""

    def __init__(self, fail=False):
        self.fail = fail
        self.shutdown_calls = []

    def submit(self, fn, *args, **kwargs):
        from concurrent.futures import Future
        from concurrent.futures.process import BrokenProcessPool

        future = Future()
        if self.fail:
            future.set_exception(BrokenProcessPool("a worker died"))
        else:
            future.set_result(fn(*args, **kwargs))
        return future

    def shutdown(self, wait=True, cancel_futures=False):
        self.shutdown_calls.append(
            {"wait": wait, "cancel_futures": cancel_futures}
        )


def _grid():
    configs = [
        SimulationConfig(decompression="ondemand", k_compress=k,
                         trace_events=False, record_trace=False)
        for k in (1, 4)
    ]
    return [api.Partition(workload=name, configs=list(configs))
            for name in ("fib", "gcd")]


class TestGracefulDegradation:
    def _serial_reference(self):
        return [
            (r.workload, r.config.strategy_name, r.result.summary())
            for r in api.SerialExecutor().run(_grid())
        ]

    def test_broken_pool_is_rebuilt_once(self, caplog):
        import logging

        pools = []
        executor = api.ParallelExecutor(jobs=2)
        original = executor._make_pool

        def make_pool(workers):
            if not pools:
                pools.append(_FakePool(fail=True))
            else:
                pools.append(_FakePool(fail=False))
            return pools[-1]

        executor._make_pool = make_pool
        del original
        with caplog.at_level(logging.WARNING,
                             logger="repro.api.executor"):
            runs = executor.run(_grid())
        assert len(pools) == 2
        assert executor.pool_rebuilds == 1
        assert executor.serial_fallback is False
        # The broken pool was torn down with its futures cancelled.
        assert pools[0].shutdown_calls == \
            [{"wait": False, "cancel_futures": True}]
        events = [parse_kv(r.message) for r in caplog.records]
        assert any(e.get("event") == "executor.pool_rebuild"
                   and e.get("reason") == "worker_died"
                   for e in events)
        # Degradation is invisible in the results.
        got = [(r.workload, r.config.strategy_name, r.result.summary())
               for r in runs]
        assert got == self._serial_reference()

    def test_double_breakage_falls_back_to_serial(self, caplog):
        import logging

        executor = api.ParallelExecutor(jobs=2)
        executor._make_pool = lambda workers: _FakePool(fail=True)
        with caplog.at_level(logging.WARNING,
                             logger="repro.api.executor"):
            runs = executor.run(_grid())
        assert executor.pool_rebuilds == 1
        assert executor.serial_fallback is True
        events = [parse_kv(r.message) for r in caplog.records]
        assert any(e.get("event") == "executor.serial_fallback"
                   for e in events)
        got = [(r.workload, r.config.strategy_name, r.result.summary())
               for r in runs]
        assert got == self._serial_reference()


class TestKeyboardInterruptCleanup:
    def test_interrupt_cancels_outstanding_futures(self):
        # Ctrl-C mid-drain must shut the pool down with
        # cancel_futures=True (no leaked workers grinding on) and still
        # propagate the interrupt.
        from concurrent.futures import Future

        class _InterruptingPool(_FakePool):
            def submit(self, fn, *args, **kwargs):
                future = Future()
                future.set_exception(KeyboardInterrupt())
                return future

        pool = _InterruptingPool()
        executor = api.ParallelExecutor(jobs=2)
        executor._make_pool = lambda workers: pool
        with pytest.raises(KeyboardInterrupt):
            executor.run(_grid())
        assert pool.shutdown_calls == \
            [{"wait": False, "cancel_futures": True}]
