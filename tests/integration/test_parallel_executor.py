"""Executor transparency: parallel == serial, byte for byte.

The acceptance bar for the repro.api executor layer: running the E1
k-edge grid with ``ParallelExecutor(jobs=4)`` must produce a ResultSet
equal to ``SerialExecutor`` — same cells in the same order, same
metrics, same serialised JSON once the execution-provenance block
(executor, jobs, wall-clock) is dropped.
"""

from __future__ import annotations

import pytest

from repro import api
from repro.core import SimulationConfig

#: The E1 grid: the experiment kernels x the k-edge sweep (trace
#: engine), exactly as benchmarks/test_e1_kedge_sweep.py runs it.
E1_WORKLOADS = (
    "composite", "cold_paths", "modular", "fsm",
    "dijkstra", "quicksort", "adpcm", "crc32",
)
E1_K_VALUES = (1, 2, 4, 8, 16, 32, "inf")


@pytest.fixture(scope="module")
def e1_spec():
    return api.ExperimentSpec(
        name="e1-parallel-equivalence",
        workloads=list(E1_WORKLOADS),
        base={"codec": "shared-dict", "decompression": "ondemand"},
        axes=api.grid(k_compress=list(E1_K_VALUES)),
        engine="trace",
    )


@pytest.fixture(scope="module")
def serial_result(e1_spec):
    return api.run_experiment(e1_spec, executor="serial")


class TestParallelEqualsSerial:
    def test_e1_grid_identical_under_4_jobs(self, e1_spec,
                                            serial_result):
        parallel = api.run_experiment(
            e1_spec, executor=api.ParallelExecutor(jobs=4)
        )
        assert parallel.meta["executor"] == "parallel"
        assert parallel.meta["jobs"] == 4
        assert serial_result.meta["executor"] == "serial"

        assert len(parallel) == len(serial_result) == \
            len(E1_WORKLOADS) * len(E1_K_VALUES)
        # Same cells, same order.
        assert [(r.workload, r.config.strategy_name)
                for r in parallel.runs] == \
            [(r.workload, r.config.strategy_name)
             for r in serial_result.runs]
        # Same metrics, cell by cell.
        for mine, ref in zip(parallel.runs, serial_result.runs):
            assert mine.result.summary() == ref.result.summary()
            assert mine.validation == ref.validation
        # Same serialised JSON minus the execution/timing block.
        assert parallel.to_json(include_execution=False) == \
            serial_result.to_json(include_execution=False)

    def test_no_validation_failures(self, serial_result):
        assert serial_result.failures() == []


class TestEngineAgreementThroughApi:
    def test_machine_and_trace_engines_agree(self):
        spec_kwargs = dict(
            workloads=["fsm", "crc32"],
            base={"codec": "shared-dict", "decompression": "ondemand"},
            axes=api.grid(k_compress=[2, 8]),
        )
        machine = api.run_experiment(
            api.ExperimentSpec(engine="machine", **spec_kwargs)
        )
        trace = api.run_experiment(
            api.ExperimentSpec(engine="trace", **spec_kwargs)
        )
        assert machine.to_dict(include_execution=False)["cells"] == \
            trace.to_dict(include_execution=False)["cells"]


class TestUnregisteredWorkloadFallback:
    def test_parallel_runs_unpicklable_workload_locally(self):
        # A Workload whose oracle is a closure cannot be shipped to a
        # worker process; the parallel executor must fall back to
        # in-process execution and still match serial output.
        from repro.runtime.machine import Machine
        from repro.workloads import Workload, generate_sized_program, \
            get_workload

        marker = []  # captured: makes the closure unpicklable

        def check(machine: Machine):
            marker.append(1)
            return []

        synth = Workload(
            name="synth-local",
            description="generated app",
            program=generate_sized_program(seed=3, target_bytes=2000),
            check=check,
        )
        workloads = [get_workload("fib"), synth]
        configs = [
            SimulationConfig(decompression="ondemand", k_compress=k,
                             trace_events=False, record_trace=False)
            for k in (1, 4)
        ]
        serial = api.run_grid(workloads, configs, engine="trace",
                              executor="serial")
        parallel = api.run_grid(workloads, configs, engine="trace",
                                executor="parallel", jobs=2)
        assert parallel.to_json(include_execution=False) == \
            serial.to_json(include_execution=False)
        assert [r.workload for r in parallel.runs] == \
            ["fib", "fib", "synth-local", "synth-local"]
