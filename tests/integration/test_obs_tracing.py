"""Tracing must never change simulation results.

The hard observability requirement from the start: arming a tracer is
out-of-band (never part of :class:`SimulationConfig`), so ResultSets
stay byte-identical and store fingerprints are unchanged whether a run
is traced or not — on both engines.  This file is that contract's test,
plus the phase-breakdown correctness checks (tracer totals must equal
the simulator's own :class:`Counters` exactly, not approximately).
"""

import os

import pytest

from repro import api
from repro.obs import STALL_KINDS, TraceSink, tracing_scope

WORKLOADS = ("fib", "gcd")

CONFIGS = [
    api.SimulationConfig(codec="shared-dict", decompression="ondemand"),
    api.SimulationConfig(
        codec="shared-dict", decompression="pre-single", k_compress=1
    ),
]


def _grid(engine):
    return api.run_grid(WORKLOADS, CONFIGS, engine=engine)


class TestResultByteIdentity:
    @pytest.mark.parametrize("engine", api.available_engines())
    def test_canonical_json_identical_traced_vs_untraced(self, engine):
        untraced = _grid(engine).canonical_json()
        with tracing_scope(TraceSink()) as sink:
            traced = _grid(engine).canonical_json()
        # The tracer really saw the runs...
        assert sink.tracers, "tracing scope armed no tracers"
        assert sum(sink.phases().values()) > 0
        # ...and changed nothing.
        assert traced == untraced

    def test_run_traced_matches_run_cell(self):
        config = CONFIGS[0]
        plain = api.run_cell("fib", config).result
        traced_result, tracer = api.run_traced("fib", config)
        assert traced_result.summary() == plain.summary()
        assert tracer.total_cycles == plain.total_cycles


class TestStoreFingerprintIdentity:
    def _spec(self):
        return api.ExperimentSpec.from_dict({
            "name": "obs-identity",
            "workloads": list(WORKLOADS),
            "base": {"codec": "shared-dict"},
            "axes": {
                "grid": {"decompression": ["ondemand", "pre-single"]}
            },
        })

    def _cells(self, root):
        """Relative cell-ref paths: ``cells/<fan>/<fingerprint>``."""
        found = set()
        cells = os.path.join(root, "cells")
        for dirpath, _, filenames in os.walk(cells):
            for name in filenames:
                found.add(os.path.relpath(
                    os.path.join(dirpath, name), root
                ))
        return found

    def test_fingerprints_identical_traced_vs_untraced(self, tmp_path):
        spec = self._spec()
        plain_root = str(tmp_path / "plain")
        traced_root = str(tmp_path / "traced")

        plain = api.run_experiment(spec, store=plain_root)
        with tracing_scope(TraceSink()) as sink:
            traced = api.run_experiment(spec, store=traced_root)

        assert sink.tracers
        assert traced.canonical_json() == plain.canonical_json()
        plain_cells = self._cells(plain_root)
        traced_cells = self._cells(traced_root)
        assert plain_cells == traced_cells
        assert plain_cells, "experiment produced no store cells"

    def test_traced_run_hits_untraced_cache(self, tmp_path):
        """A traced re-run of a cold sweep is served 100% from cache."""
        spec = self._spec()
        root = str(tmp_path / "store")
        cold = api.run_experiment(spec, store=root)
        before = self._cells(root)
        with tracing_scope(TraceSink()):
            warm = api.run_experiment(spec, store=root)
        assert warm.canonical_json() == cold.canonical_json()
        assert self._cells(root) == before


class TestPhaseBreakdownCorrectness:
    @pytest.mark.parametrize("engine", api.available_engines())
    @pytest.mark.parametrize("config", CONFIGS, ids=["ondemand", "kc1"])
    def test_tracer_totals_equal_counters(self, engine, config):
        result, tracer = api.run_traced("fib", config, engine=engine)
        phases = tracer.phases()
        assert phases["execute"] == result.execution_cycles
        stall_sum = sum(phases[f"stall_{k}"] for k in STALL_KINDS)
        assert stall_sum == result.counters.stall_cycles
        assert phases["execute"] + stall_sum == result.total_cycles
        assert result.phases == phases

    def test_phases_identical_across_engines(self):
        breakdowns = [
            api.run_traced("fib", CONFIGS[0], engine=engine)[1].phases()
            for engine in api.available_engines()
        ]
        assert all(b == breakdowns[0] for b in breakdowns[1:])

    def test_uncompressed_run_has_no_compression_stalls(self):
        config = api.SimulationConfig(
            codec="null", decompression="none"
        )
        result, tracer = api.run_traced("fib", config)
        phases = tracer.phases()
        assert phases["stall_decompress"] == 0
        assert phases["stall_patch"] == 0
        assert phases["stall_contention"] == 0
        assert phases["execute"] == result.execution_cycles

    def test_summary_untouched_by_phases(self):
        """``phases`` rides on the result object, never its summary."""
        result, _ = api.run_traced("fib", CONFIGS[0])
        assert "phases" not in result.summary()
