"""Structural tests over the whole workload suite."""

import pytest

from repro.cfg import build_cfg, natural_loops
from repro.core import SimulationConfig
from repro.core.manager import CodeCompressionManager
from repro.isa import assemble, disassemble_to_source
from repro.workloads import (
    Workload,
    available_workloads,
    full_suite,
    get_workload,
)

_EXPECTED = {
    "adpcm", "bubble", "cold_paths", "composite", "crc32", "dijkstra",
    "fib", "fir", "fsm", "gcd", "histogram", "matmul", "modular",
    "quicksort", "strsearch",
}


class TestRegistry:
    def test_expected_kernels_present(self):
        assert set(available_workloads()) == _EXPECTED

    def test_unknown_workload_raises_with_choices(self):
        with pytest.raises(KeyError, match="available"):
            get_workload("doom")

    def test_factories_return_fresh_instances(self):
        assert get_workload("fib") is not get_workload("fib")

    def test_full_suite_instantiates_everything(self):
        suite = full_suite()
        assert len(suite) == len(_EXPECTED)
        assert all(isinstance(w, Workload) for w in suite)


class TestKernelStructure:
    @pytest.mark.parametrize("name", sorted(_EXPECTED))
    def test_cfg_is_structurally_valid(self, name):
        cfg = build_cfg(get_workload(name).program)
        assert cfg.validate() == []

    @pytest.mark.parametrize("name", sorted(_EXPECTED))
    def test_every_kernel_has_a_description(self, name):
        workload = get_workload(name)
        assert workload.description
        assert workload.name == name

    @pytest.mark.parametrize("name", sorted(_EXPECTED))
    def test_all_blocks_reachable(self, name):
        cfg = build_cfg(get_workload(name).program)
        reachable = cfg.reachable_from_entry()
        assert reachable == {b.block_id for b in cfg.blocks}

    @pytest.mark.parametrize(
        "name",
        ["matmul", "fir", "bubble", "quicksort", "dijkstra", "crc32",
         "adpcm", "histogram", "fsm", "cold_paths", "modular",
         "composite"],
    )
    def test_nontrivial_kernels_have_loops(self, name):
        cfg = build_cfg(get_workload(name).program)
        assert natural_loops(cfg)

    @pytest.mark.parametrize("name", sorted(_EXPECTED))
    def test_disassembly_reassembles(self, name):
        program = get_workload(name).program
        text = disassemble_to_source(program)
        again = assemble(text, name)
        assert again.encode() == program.encode()


class TestOracles:
    @pytest.mark.parametrize("name", sorted(_EXPECTED))
    def test_oracle_accepts_correct_run(self, name):
        workload = get_workload(name)
        cfg = build_cfg(workload.program)
        manager = CodeCompressionManager(
            cfg,
            SimulationConfig(decompression="none", trace_events=False,
                             record_trace=False),
        )
        manager.run()
        assert workload.validate(manager.machine) == []

    def test_oracle_rejects_wrong_state(self):
        # sanity: oracles are real checks, not rubber stamps
        workload = get_workload("fib")
        cfg = build_cfg(workload.program)
        manager = CodeCompressionManager(
            cfg,
            SimulationConfig(decompression="none", trace_events=False,
                             record_trace=False),
        )
        manager.run()
        manager.machine.registers[3] += 1  # corrupt the result
        assert workload.validate(manager.machine)
