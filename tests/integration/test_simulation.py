"""End-to-end integration tests: the differential oracle.

The strongest system-level property of the paper's scheme is that it is
*transparent*: compression/decompression policy must never change program
semantics, only memory footprint and cycle count.  Every test here runs a
workload under some configuration and checks (a) the kernel's own oracle
and (b) that registers and block trace match the uncompressed baseline.
"""

import pytest

from repro.analysis import run_one
from repro.cfg import build_cfg
from repro.core import SimulationConfig, simulate
from repro.core.manager import CodeCompressionManager
from repro.workloads import (
    GeneratorConfig,
    available_workloads,
    generate_program,
    get_workload,
)

_FAST = dict(trace_events=False, record_trace=True)

_STRATEGIES = [
    SimulationConfig(decompression="ondemand", k_compress=1, **_FAST),
    SimulationConfig(decompression="ondemand", k_compress=8, **_FAST),
    SimulationConfig(decompression="ondemand", k_compress=None, **_FAST),
    SimulationConfig(decompression="pre-all", k_compress=8,
                     k_decompress=2, **_FAST),
    SimulationConfig(decompression="pre-single", k_compress=8,
                     k_decompress=2, **_FAST),
    SimulationConfig(decompression="pre-single", k_compress=4,
                     k_decompress=3, predictor="last-successor", **_FAST),
    SimulationConfig(decompression="pre-single", k_compress=4,
                     k_decompress=3, predictor="markov", **_FAST),
]


def _baseline(cfg):
    manager = CodeCompressionManager(
        cfg, SimulationConfig(decompression="none", **_FAST)
    )
    result = manager.run()
    return result


class TestDifferentialOracle:
    @pytest.mark.parametrize("name", sorted(available_workloads()))
    @pytest.mark.parametrize("config_index", range(len(_STRATEGIES)))
    def test_semantics_preserved(self, name, config_index):
        workload = get_workload(name)
        cfg = build_cfg(workload.program)
        base = _baseline(cfg)
        config = _STRATEGIES[config_index]
        manager = CodeCompressionManager(cfg, config)
        result = manager.run()
        assert workload.validate(manager.machine) == []
        assert result.registers == base.registers
        assert result.block_trace == base.block_trace
        assert result.execution_cycles == base.execution_cycles

    @pytest.mark.parametrize("codec", [
        "huffman", "lzw", "lz77", "rle", "mtf-rle", "dictionary",
        "shared-dict", "shared-huffman", "shared-fields",
    ])
    def test_all_codecs_transparent(self, codec):
        workload = get_workload("quicksort")
        cfg = build_cfg(workload.program)
        base = _baseline(cfg)
        manager = CodeCompressionManager(
            cfg,
            SimulationConfig(codec=codec, decompression="ondemand",
                             k_compress=4, **_FAST),
        )
        result = manager.run()
        assert workload.validate(manager.machine) == []
        assert result.registers == base.registers

    @pytest.mark.parametrize("seed", range(3))
    def test_synthetic_programs_transparent(self, seed):
        program = generate_program(
            GeneratorConfig(seed=seed, segments=18)
        )
        cfg = build_cfg(program)
        base = _baseline(cfg)
        for config in (_STRATEGIES[0], _STRATEGIES[3], _STRATEGIES[4]):
            manager = CodeCompressionManager(cfg, config)
            result = manager.run()
            assert result.registers == base.registers
            assert result.block_trace == base.block_trace


class TestOverheadAccounting:
    def test_uncompressed_baseline_has_zero_overhead(self):
        result = simulate(
            get_workload("fir").program,
            SimulationConfig(decompression="none", **_FAST),
        )
        assert result.cycle_overhead == 0.0
        assert result.counters.faults == 0

    def test_total_cycles_decompose(self):
        workload = get_workload("fir")
        result = simulate(
            workload.program,
            SimulationConfig(decompression="ondemand", k_compress=4,
                             **_FAST),
        )
        assert result.total_cycles == (
            result.execution_cycles + result.counters.stall_cycles
        )

    def test_overhead_monotone_in_fault_cost(self):
        workload = get_workload("dijkstra")
        cfg = build_cfg(workload.program)
        overheads = []
        for fault_cycles in (10, 100, 400):
            result = CodeCompressionManager(
                cfg,
                SimulationConfig(decompression="ondemand", k_compress=2,
                                 fault_cycles=fault_cycles, **_FAST),
            ).run()
            overheads.append(result.cycle_overhead)
        assert overheads[0] < overheads[1] < overheads[2]

    def test_contention_increases_total_cycles(self):
        workload = get_workload("fir")
        cfg = build_cfg(workload.program)
        free = CodeCompressionManager(
            cfg,
            SimulationConfig(decompression="pre-all", k_compress=8,
                             contention=0.0, **_FAST),
        ).run()
        shared = CodeCompressionManager(
            cfg,
            SimulationConfig(decompression="pre-all", k_compress=8,
                             contention=0.5, **_FAST),
        ).run()
        assert shared.total_cycles > free.total_cycles


class TestMemoryAccounting:
    def test_footprint_floor_is_compressed_image(self):
        workload = get_workload("matmul")
        cfg = build_cfg(workload.program)
        manager = CodeCompressionManager(
            cfg,
            SimulationConfig(decompression="ondemand", k_compress=1,
                             **_FAST),
        )
        result = manager.run()
        minimum = manager.image.compressed_image_size
        assert all(
            footprint >= minimum
            for _, footprint in result.footprint.samples
        )

    def test_never_recompress_converges_to_touched_code(self):
        workload = get_workload("matmul")
        cfg = build_cfg(workload.program)
        manager = CodeCompressionManager(
            cfg,
            SimulationConfig(decompression="ondemand", k_compress=None,
                             **_FAST),
        )
        result = manager.run()
        touched = {
            manager.unit_of(block) for block in set(result.block_trace)
        }
        expected = manager.image.compressed_image_size + sum(
            manager.unit_uncompressed_size(unit) for unit in touched
        )
        assert result.footprint.samples[-1][1] == expected

    def test_memory_k_tradeoff(self):
        """Section 3: larger k -> more memory, fewer faults."""
        workload = get_workload("fsm")
        cfg = build_cfg(workload.program)
        footprints, faults = [], []
        for k in (1, 4, 16, 64):
            result = CodeCompressionManager(
                cfg,
                SimulationConfig(decompression="ondemand", k_compress=k,
                                 **_FAST),
            ).run()
            footprints.append(result.average_footprint)
            faults.append(result.counters.faults)
        assert footprints == sorted(footprints)
        assert faults == sorted(faults, reverse=True)

    def test_design_space_ordering(self):
        """Figure 3 qualitative claims: pre-all uses the most memory;
        pre-decompression reduces stall cycles vs on-demand."""
        workload = get_workload("composite")
        cfg = build_cfg(workload.program)
        results = {}
        for name, config in {
            "ondemand": SimulationConfig(
                decompression="ondemand", k_compress=16, **_FAST
            ),
            "pre-all": SimulationConfig(
                decompression="pre-all", k_compress=16, k_decompress=2,
                **_FAST
            ),
            "pre-single": SimulationConfig(
                decompression="pre-single", k_compress=16, k_decompress=2,
                **_FAST
            ),
        }.items():
            results[name] = CodeCompressionManager(cfg, config).run()
        assert results["pre-all"].counters.stall_cycles <= \
            results["ondemand"].counters.stall_cycles
        assert results["pre-all"].average_footprint >= \
            results["pre-single"].average_footprint
