"""Integration tests for the caching executor and the store layer.

The acceptance contract: running the same ExperimentSpec twice through
the CachingExecutor produces a byte-identical ResultSet to an uncached
run, with the second run executing zero simulator cells; a partial
(interrupted) sweep resumes by computing only the missing cells; and
two processes can write the same store concurrently without corrupting
it.
"""

import multiprocessing
import os

import pytest

from repro import api
from repro.api.executor import SerialExecutor
from repro.store import ExperimentStore
from repro.store.executor import CachingExecutor


def _spec(**overrides):
    fields = dict(
        name="store-int",
        workloads=["fib", "gcd"],
        base={"codec": "shared-dict", "decompression": "ondemand"},
        axes=api.grid(k_compress=[1, "inf"]),
        engine="trace",
    )
    fields.update(overrides)
    return api.ExperimentSpec(**fields)


class CountingSerial(SerialExecutor):
    """A serial executor that counts the cells it actually computes."""

    def __init__(self, jobs=None):
        super().__init__(jobs)
        self.cells_computed = 0

    def run(self, partitions, engine="machine", fast=True,
            max_blocks=None):
        self.cells_computed += sum(
            len(p.configs) for p in partitions
        )
        return super().run(partitions, engine=engine, fast=fast,
                           max_blocks=max_blocks)


class TestCacheEquivalence:
    def test_second_run_is_byte_identical_and_computes_nothing(
        self, tmp_path
    ):
        spec = _spec()
        uncached = api.run_experiment(spec)

        counting = CountingSerial()
        executor = CachingExecutor(
            store=str(tmp_path / "store"), inner=counting
        )
        first = api.run_experiment(spec, executor=executor)
        assert executor.misses == len(uncached.runs)
        assert counting.cells_computed == len(uncached.runs)

        second = api.run_experiment(spec, executor=executor)
        assert counting.cells_computed == len(uncached.runs), \
            "second run must execute zero simulator cells"
        assert executor.hits == len(uncached.runs)
        assert second.canonical_json() == uncached.canonical_json()
        assert first.canonical_json() == uncached.canonical_json()
        # The persistent hit counter agrees with the session counters.
        stats = executor.store.stats()
        assert stats["hits"] == len(uncached.runs)
        assert stats["misses"] == len(uncached.runs)

    def test_cache_hits_survive_engine_consistency(self, tmp_path):
        # machine and trace engines produce identical metrics but have
        # distinct fingerprints: a trace-cached cell must not be served
        # to a machine-engine request.
        store = str(tmp_path / "store")
        api.run_experiment(_spec(engine="trace"), store=store)
        machine = api.run_experiment(_spec(engine="machine"),
                                     store=store)
        assert machine.meta["cache"]["hits"] == 0
        assert machine.meta["cache"]["misses"] == len(machine.runs)

    def test_parallel_inner_executor_matches(self, tmp_path):
        spec = _spec(jobs=2)
        store = str(tmp_path / "store")
        uncached = api.run_experiment(spec)
        first = api.run_experiment(spec, store=store)
        second = api.run_experiment(spec, store=store)
        assert second.meta["cache"]["hits"] == len(uncached.runs)
        assert first.canonical_json() == uncached.canonical_json()
        assert second.canonical_json() == uncached.canonical_json()


class TestExecutorResolution:
    def test_no_cache_beats_caching_executor_name(self, tmp_path,
                                                  monkeypatch):
        from repro.api.executor import make_executor

        monkeypatch.setenv("REPRO_STORE_DIR",
                           str(tmp_path / "env"))
        chosen = make_executor("caching", store=False)
        assert not isinstance(chosen, CachingExecutor)
        assert not (tmp_path / "env").exists()

    def test_instance_executor_honours_requested_store(self, tmp_path):
        from repro.api.executor import make_executor

        inner = SerialExecutor()
        chosen = make_executor(inner,
                               store=str(tmp_path / "store"))
        assert isinstance(chosen, CachingExecutor)
        assert chosen.inner is inner
        # Without a store request, instances pass through untouched.
        assert make_executor(inner) is inner
        # A caching instance is never double-wrapped.
        assert make_executor(chosen,
                             store=str(tmp_path / "store")) is chosen


class TestResume:
    def test_interrupted_sweep_computes_only_missing_cells(
        self, tmp_path
    ):
        store = str(tmp_path / "store")
        partial = _spec(axes=api.grid(k_compress=[1]))
        full = _spec(axes=api.grid(k_compress=[1, "inf"]))
        api.run_experiment(partial, store=store)

        resumed = api.run_experiment(full, store=store)
        cache = resumed.meta["cache"]
        assert cache["hits"] == len(partial.workload_names())
        assert cache["misses"] == \
            len(resumed.runs) - cache["hits"]
        assert resumed.canonical_json() == \
            api.run_experiment(full).canonical_json()

    def test_hard_interrupted_serial_sweep_keeps_finished_partitions(
        self, tmp_path
    ):
        # A serial inner persists partition by partition: when the
        # second partition dies mid-run, the first one's cells are
        # already on disk and the retry only recomputes the rest.
        class DiesOnSecondCall(SerialExecutor):
            def __init__(self):
                super().__init__()
                self.calls = 0

            def run(self, partitions, **kwargs):
                self.calls += 1
                if self.calls > 1:
                    raise KeyboardInterrupt()
                return super().run(partitions, **kwargs)

        store_dir = str(tmp_path / "store")
        spec = _spec()
        broken = CachingExecutor(store=store_dir,
                                 inner=DiesOnSecondCall())
        with pytest.raises(KeyboardInterrupt):
            api.run_experiment(spec, executor=broken)
        assert ExperimentStore(store_dir).stats()["cells"] == 2

        resumed = api.run_experiment(spec, store=store_dir)
        assert resumed.meta["cache"]["hits"] == 2
        assert resumed.meta["cache"]["misses"] == 2
        assert resumed.canonical_json() == \
            api.run_experiment(spec).canonical_json()

    def test_result_set_merge_composes_partials(self, tmp_path):
        partial = api.run_experiment(_spec(axes=api.grid(
            k_compress=[1]
        )))
        full = api.run_experiment(_spec())
        merged = partial.merge(full)
        assert len(merged) == len(full)
        # Live (partial) runs win; the rest come from the other set.
        assert merged.runs[0] is partial.runs[0]
        # Same cells (merge keeps self-first order, so compare as sets).
        import json as json_module

        def cell_set(result_set):
            return {
                json_module.dumps(cell, sort_keys=True)
                for cell in result_set.to_dict(
                    include_execution=False
                )["cells"]
            }

        assert cell_set(merged) == cell_set(full)
        # Merging a set with itself is the identity.
        assert full.merge(full).canonical_json() == \
            full.canonical_json()


def _concurrent_worker(store_dir, barrier):
    from repro import api as worker_api

    spec = worker_api.ExperimentSpec(
        name="store-int",
        workloads=["fib", "gcd"],
        base={"codec": "shared-dict", "decompression": "ondemand"},
        axes=worker_api.grid(k_compress=[1, "inf"]),
        engine="trace",
    )
    barrier.wait(timeout=60)  # maximise write overlap
    result = worker_api.run_experiment(spec, store=store_dir)
    if result.failures():
        raise SystemExit(3)


class TestConcurrency:
    def test_two_processes_write_one_store(self, tmp_path):
        store_dir = str(tmp_path / "store")
        context = multiprocessing.get_context("fork")
        barrier = context.Barrier(2)
        workers = [
            context.Process(target=_concurrent_worker,
                            args=(store_dir, barrier))
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
            assert worker.exitcode == 0
        # The store must be intact and fully warm: a third run in this
        # process is served entirely from cache and matches a cold run.
        spec = _spec()
        cached = api.run_experiment(spec, store=store_dir)
        assert cached.meta["cache"]["misses"] == 0
        assert cached.meta["cache"]["hits"] == len(cached.runs)
        assert cached.canonical_json() == \
            api.run_experiment(spec).canonical_json()
        store = ExperimentStore(store_dir)
        stats = store.stats()
        assert stats["cells"] == len(cached.runs)


class TestErrorCells:
    def test_raising_cell_reported_not_dropped(self):
        # max_steps tiny -> the machine raises; the grid must still
        # produce a row for every cell and flag the failures.
        spec = _spec(base={
            "codec": "shared-dict", "decompression": "ondemand",
            "max_steps": 5,
        })
        result = api.run_experiment(spec)
        assert len(result.runs) == 4
        assert len(result.errors()) == 4
        for run in result.errors():
            assert not run.ok
            assert "MachineError" in run.error
        payload = result.to_dict()
        assert all("error" in cell for cell in payload["cells"])

    def test_error_cells_are_not_cached(self, tmp_path):
        store = str(tmp_path / "store")
        spec = _spec(base={
            "codec": "shared-dict", "decompression": "ondemand",
            "max_steps": 5,
        })
        first = api.run_experiment(spec, store=store)
        assert first.meta["cache"]["misses"] == len(first.runs)
        second = api.run_experiment(spec, store=store)
        # Still misses: failures must re-raise, not replay from cache.
        assert second.meta["cache"]["hits"] == 0
        assert ExperimentStore(store).stats()["cells"] == 0


class TestArtifactReuse:
    def test_payloads_roundtrip_through_the_store(self, tmp_path):
        from repro.cfg import build_cfg
        from repro.memory.image import (
            artifact_cache,
            compression_artifacts,
            set_artifact_provider,
        )
        from repro.store.executor import StoreArtifactProvider
        from repro.workloads import get_workload

        store = ExperimentStore(tmp_path / "store")
        provider = StoreArtifactProvider(store)
        graph = build_cfg(get_workload("crc32").program)
        baseline = compression_artifacts(graph, "shared-dict")

        previous = set_artifact_provider(provider)
        try:
            artifact_cache().clear()
            saved = compression_artifacts(graph, "shared-dict")
            assert saved.payloads == baseline.payloads
            assert store.stats()["artifacts"] == 1
            # A "new process": cold LRU, artifacts served from disk.
            artifact_cache().clear()
            loaded = compression_artifacts(graph, "shared-dict")
            assert loaded.payloads == baseline.payloads
            assert loaded.codec.model_digest() == \
                baseline.codec.model_digest()
        finally:
            set_artifact_provider(previous)
            artifact_cache().clear()

    def test_manager_export_hook(self, tmp_path):
        from repro.cfg import build_cfg
        from repro.core import SimulationConfig
        from repro.core.manager import CodeCompressionManager
        from repro.workloads import get_workload

        store = ExperimentStore(tmp_path / "store")
        graph = build_cfg(get_workload("fib").program)
        manager = CodeCompressionManager(
            graph,
            SimulationConfig(trace_events=False, record_trace=False),
        )
        key = manager.export_artifacts(store)
        assert key is not None
        assert store.get_artifact_bundle(
            "shared-dict", manager._artifacts.block_data
        ) == manager._artifacts.payloads

    def test_uncompressed_manager_exports_nothing(self, tmp_path):
        from repro.cfg import build_cfg
        from repro.core import SimulationConfig
        from repro.core.manager import CodeCompressionManager
        from repro.workloads import get_workload

        store = ExperimentStore(tmp_path / "store")
        manager = CodeCompressionManager(
            build_cfg(get_workload("fib").program),
            SimulationConfig(decompression="none", codec="null",
                             trace_events=False, record_trace=False),
        )
        assert manager.export_artifacts(store) is None

    def test_env_var_does_not_leak_after_run(self, tmp_path):
        spec = _spec(axes=api.grid(k_compress=[1]))
        assert "REPRO_STORE_ARTIFACTS" not in os.environ
        api.run_experiment(spec, store=str(tmp_path / "store"))
        assert "REPRO_STORE_ARTIFACTS" not in os.environ
