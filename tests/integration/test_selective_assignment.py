"""Integration: per-unit codec assignment through the whole stack.

Mixed-codec images must decode correctly on the executed path (the
workload oracles check final machine state), charge each unit its own
codec's latency, replay identically under the trace engine, keep the
uniform default on the exact pre-selection code path, and fingerprint
distinctly in the experiment store.
"""

import json

import pytest

from repro import api
from repro.cfg import build_cfg
from repro.core import SimulationConfig
from repro.memory.image import compression_artifacts
from repro.selection import UNCOMPRESSED, build_assignment
from repro.store.fingerprint import cell_fingerprint
from repro.workloads import get_workload

_POLICIES = ("uniform", "hotness-threshold", "knapsack",
             "hotness-threshold:0.2:rle")


@pytest.fixture(scope="module")
def profiles():
    return {
        name: api.profile_workload(name)
        for name in ("composite", "cold_paths", "fsm")
    }


def _configs(profile, **overrides):
    fields = dict(
        codec="shared-dict", decompression="ondemand", k_compress=2,
        profile=profile, trace_events=False, record_trace=False,
    )
    fields.update(overrides)
    return [
        SimulationConfig(assignment=policy, **fields)
        for policy in _POLICIES
    ]


class TestOracleValidation:
    def test_mixed_codec_runs_pass_oracles(self, profiles):
        for name, profile in profiles.items():
            grid = api.run_grid(
                [name], _configs(profile), engine="machine",
                store=False,
            )
            assert not grid.failures(), (name, grid.failures())

    def test_function_granularity_and_predecompression(self, profiles):
        grid = api.run_grid(
            ["composite"],
            _configs(
                profiles["composite"],
                decompression="pre-all", granularity="function",
            ),
            engine="machine", store=False,
        )
        assert not grid.failures()


class TestEngineEquivalence:
    def test_trace_metrics_match_machine(self, profiles):
        configs = _configs(profiles["composite"])
        machine = api.run_grid(
            ["composite"], configs, engine="machine", store=False
        )
        trace = api.run_grid(
            ["composite"], configs, engine="trace", store=False
        )
        machine_cells = machine.to_dict(
            include_execution=False
        )["cells"]
        trace_cells = trace.to_dict(include_execution=False)["cells"]
        assert json.dumps(machine_cells, sort_keys=True) == \
            json.dumps(trace_cells, sort_keys=True)


class TestUniformIdentity:
    def test_uniform_uses_shared_artifact_path(self):
        cfg = build_cfg(get_workload("composite").program)
        _, result = api.run_instrumented(
            cfg, SimulationConfig(codec="shared-dict")
        )
        manager, _ = api.run_instrumented(
            cfg, SimulationConfig(codec="shared-dict")
        )
        # The uniform default must ride the exact single-codec memo:
        # same shared artifacts object, no assignment built.
        assert manager.residency.assignment is None
        assert manager.residency.artifacts is compression_artifacts(
            cfg, "shared-dict"
        )

    def test_uniform_metrics_unchanged_by_assignment_field(self):
        # Constructing via an explicit assignment="uniform" must be
        # indistinguishable from the default.
        base = SimulationConfig()
        explicit = SimulationConfig(assignment="uniform")
        assert base == explicit


class TestPerUnitLatency:
    def test_uncompressed_units_charge_zero_codec_latency(self):
        profile = api.profile_workload("composite")
        cfg = build_cfg(get_workload("composite").program)
        config = SimulationConfig(
            codec="shared-dict", assignment="hotness-threshold",
            profile=profile,
        )
        manager, _ = api.run_instrumented(cfg, config)
        residency = manager.residency
        assignment = residency.assignment
        assert assignment is not None
        null_units = [
            unit for unit, codec_name in assignment.unit_codecs.items()
            if codec_name == UNCOMPRESSED
        ]
        assert null_units
        for unit in null_units:
            assert residency.unit_codec(unit).name == "null"
            assert residency.unit_decompress_latency(unit) == 0
        base_units = [
            unit for unit, codec_name in assignment.unit_codecs.items()
            if codec_name == "shared-dict"
        ]
        for unit in base_units[:3]:
            assert residency.unit_decompress_latency(unit) > 0

    def test_mixed_image_size_matches_assignment(self):
        profile = api.profile_workload("cold_paths")
        cfg = build_cfg(get_workload("cold_paths").program)
        config = SimulationConfig(
            codec="shared-dict", assignment="knapsack",
            profile=profile,
        )
        assignment = build_assignment(cfg, config)
        manager, result = api.run_instrumented(cfg, config)
        image = manager.image
        per_codec = {
            name: compression_artifacts(cfg, name)
            for name in assignment.codec_names()
        }
        expected = sum(
            len(per_codec[assignment.block_codecs[b.block_id]]
                .payloads[b.block_id])
            for b in cfg.blocks
        ) + image.model_overhead
        assert result.compressed_size == expected
        # Model overhead charged once per distinct codec in use.
        distinct = {
            id(image.codec_for(b.block_id)) for b in cfg.blocks
        }
        assert image.model_overhead == sum(
            int(getattr(c, "model_overhead_bytes", 0))
            for c in {
                id(image.codec_for(b.block_id)):
                image.codec_for(b.block_id)
                for b in cfg.blocks
            }.values()
        )
        assert len(distinct) >= 2

    def test_every_mixed_block_verifies(self):
        profile = api.profile_workload("fsm")
        cfg = build_cfg(get_workload("fsm").program)
        manager, _ = api.run_instrumented(
            cfg,
            SimulationConfig(
                codec="shared-dict", assignment="hotness-threshold",
                profile=profile,
            ),
        )
        image = manager.image
        assert all(
            image.verify_block(b.block_id) for b in cfg.blocks
        )


class TestArtifactExport:
    def test_mixed_runs_never_export_under_base_codec_key(self):
        # A mixed payload list stored under the base codec's key would
        # poison what a later *uniform* run loads from the bundle
        # store; export must decline instead.
        class Recorder:
            calls = []

            def put_artifact_bundle(self, codec_name, block_data,
                                    payloads):
                self.calls.append(codec_name)
                return "key"

        profile = api.profile_workload("composite")
        cfg = build_cfg(get_workload("composite").program)
        store = Recorder()
        mixed_manager, _ = api.run_instrumented(
            cfg,
            SimulationConfig(
                codec="shared-dict", assignment="hotness-threshold",
                profile=profile,
            ),
        )
        assert mixed_manager.export_artifacts(store) is None
        assert store.calls == []
        uniform_manager, _ = api.run_instrumented(
            cfg, SimulationConfig(codec="shared-dict")
        )
        assert uniform_manager.export_artifacts(store) == "key"
        assert store.calls == ["shared-dict"]


class TestProfileWorkload:
    def test_profile_counts_match_block_entries(self):
        profile = api.profile_workload("fib")
        run = api.run_cell(
            "fib",
            SimulationConfig(
                decompression="none", codec="null",
                trace_events=False, record_trace=True,
            ),
        )
        assert sum(profile.block_counts.values()) == \
            len(run.result.block_trace)

    def test_refuses_truncated_profiling_trace(self, monkeypatch):
        import repro.core.manager as manager_mod

        monkeypatch.setattr(manager_mod, "_TRACE_CAP", 4)
        with pytest.raises(ValueError, match="recording cap"):
            api.profile_workload("fib")


class TestStoreFingerprints:
    def test_assignments_fingerprint_distinctly(self):
        workload = get_workload("composite")
        profile = api.profile_workload(workload)
        prints = {
            policy: cell_fingerprint(
                workload,
                SimulationConfig(
                    codec="shared-dict", assignment=policy,
                    profile=profile,
                ),
            )
            for policy in ("uniform", "knapsack", "knapsack:0.9")
        }
        assert len(set(prints.values())) == len(prints)
