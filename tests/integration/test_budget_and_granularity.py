"""Integration tests for the memory-budget mode (Section 2) and the
function-granularity baseline (Section 6)."""

import pytest

from repro.cfg import build_cfg
from repro.core import SimulationConfig
from repro.core.manager import CodeCompressionManager
from repro.workloads import get_workload

_FAST = dict(trace_events=False, record_trace=True)


class TestMemoryBudget:
    def _run(self, name, budget, **overrides):
        workload = get_workload(name)
        cfg = build_cfg(workload.program)
        config = SimulationConfig(
            decompression="ondemand",
            k_compress=None,  # only the budget forces recompression
            memory_budget=budget,
            **_FAST,
            **overrides,
        )
        manager = CodeCompressionManager(cfg, config)
        result = manager.run()
        assert workload.validate(manager.machine) == []
        return manager, result

    def test_budget_respected_throughout(self):
        workload = get_workload("dijkstra")
        cfg = build_cfg(workload.program)
        image_size = CodeCompressionManager(
            cfg, SimulationConfig(**_FAST)
        ).image.compressed_image_size
        budget = image_size + 120
        _, result = self._run("dijkstra", budget)
        assert result.peak_footprint <= budget
        assert result.counters.evictions > 0

    def test_semantics_preserved_under_budget(self):
        manager, result = self._run("quicksort", budget=None or 10_000)
        base = CodeCompressionManager(
            build_cfg(get_workload("quicksort").program),
            SimulationConfig(decompression="none", **_FAST),
        ).run()
        assert result.registers == base.registers

    def test_tighter_budget_more_evictions(self):
        workload = get_workload("dijkstra")
        cfg = build_cfg(workload.program)
        image_size = CodeCompressionManager(
            cfg, SimulationConfig(**_FAST)
        ).image.compressed_image_size
        evictions = []
        for slack in (400, 160, 80):
            _, result = self._run("dijkstra", image_size + slack)
            evictions.append(result.counters.evictions)
        assert evictions == sorted(evictions)

    def test_tighter_budget_higher_overhead(self):
        workload = get_workload("fsm")
        cfg = build_cfg(workload.program)
        image_size = CodeCompressionManager(
            cfg, SimulationConfig(**_FAST)
        ).image.compressed_image_size
        overheads = []
        for slack in (500, 120, 60):
            _, result = self._run("fsm", image_size + slack)
            overheads.append(result.cycle_overhead)
        assert overheads[0] <= overheads[-1]

    @pytest.mark.parametrize("policy", ["lru", "fifo", "largest"])
    def test_all_eviction_policies_work(self, policy):
        _, result = self._run("adpcm", budget=400, eviction=policy)
        assert result.total_cycles > 0

    def test_impossible_budget_raises(self):
        from repro.strategies.budget import BudgetError

        with pytest.raises(BudgetError):
            self._run("matmul", budget=40)


class TestFunctionGranularity:
    def _run(self, name, granularity, k=8):
        workload = get_workload(name)
        cfg = build_cfg(workload.program)
        manager = CodeCompressionManager(
            cfg,
            SimulationConfig(
                decompression="ondemand",
                k_compress=k,
                granularity=granularity,
                **_FAST,
            ),
        )
        result = manager.run()
        assert workload.validate(manager.machine) == []
        return manager, result

    def test_function_units_fault_once_per_function_entry(self):
        manager, result = self._run("modular", "function")
        # a fault decompresses the whole function: far fewer faults than
        # blocks executed
        assert result.counters.faults < result.counters.blocks_executed

    def test_semantics_identical_across_granularities(self):
        _, block_result = self._run("modular", "block")
        _, function_result = self._run("modular", "function")
        assert block_result.registers == function_result.registers
        assert block_result.block_trace == function_result.block_trace

    def test_block_granularity_saves_more_on_cold_paths(self):
        """Section 6: a hot chain inside a big function stays small at
        block granularity but drags the whole function in at function
        granularity."""
        _, block_result = self._run("cold_paths", "block", k=16)
        _, function_result = self._run("cold_paths", "function", k=16)
        assert block_result.average_footprint < \
            function_result.average_footprint

    def test_function_granularity_fewer_faults_on_modular(self):
        """The flip side: call-heavy code faults less often per unit at
        function granularity."""
        _, block_result = self._run("modular", "block", k=4)
        _, function_result = self._run("modular", "function", k=4)
        assert function_result.counters.faults <= \
            block_result.counters.faults


class TestInPlaceScheme:
    def _run(self, scheme):
        workload = get_workload("fsm")
        cfg = build_cfg(workload.program)
        manager = CodeCompressionManager(
            cfg,
            SimulationConfig(
                decompression="ondemand",
                k_compress=2,
                image_scheme=scheme,
                **_FAST,
            ),
        )
        result = manager.run()
        assert workload.validate(manager.machine) == []
        return manager, result

    def test_semantics_identical(self):
        _, separate = self._run("separate")
        _, inplace = self._run("inplace")
        assert separate.registers == inplace.registers

    def test_inplace_relocates_blocks(self):
        manager, _ = self._run("inplace")
        assert manager.image.relocations > 0

    def test_separate_scheme_never_relocates(self):
        """Section 5's design point: compressed block locations are
        fixed."""
        manager, _ = self._run("separate")
        addresses_before = [
            b.compressed_addr for b in manager.image.blocks
        ]
        fresh = type(manager.image)(manager.cfg, manager.codec)
        assert addresses_before == [
            b.compressed_addr for b in fresh.blocks
        ]

    def test_inplace_fragments_address_space(self):
        separate_manager, _ = self._run("separate")
        inplace_manager, _ = self._run("inplace")
        # the in-place scheme churns its single area; the separate scheme
        # reuses same-size holes in the decompressed area
        assert inplace_manager.image.relocations > 0
        assert separate_manager.image.allocator.hole_count <= \
            inplace_manager.image.allocator.hole_count + 4
