"""Chaos scenarios for the sweep service (`repro.service`).

The service inherits the executor stack's fault semantics, and this
suite pins the service-level consequences: a worker hitting injected
faults mid-job must finish the job with **structured error rows**
(never a dead job, never an abort), failed cells are **never cached**
(neither as cell records nor via job dedup), and a resubmission after
the fault clears recomputes **exactly** the failed cells.

Faults are installed via ``$REPRO_FAULTS`` — the same environment
contract worker processes use — with ``transient`` rules: ``crash``
rules are deliberately inert outside worker subprocesses and SIGALRM
deadlines only arm on main threads, so transient faults are the kind
that actually penetrates the service's worker threads.
"""

from __future__ import annotations

import json
import time

from repro import api
from repro.faults import FAULTS_ENV, FaultPlan, FaultRule, RetryPolicy
from repro.service import JobManager


def _spec_dict():
    return {
        "name": "chaos-service",
        "workloads": ["fib", "gcd"],
        "base": {"codec": "shared-dict", "decompression": "ondemand"},
        "axes": {"grid": {"k_compress": [1, "inf"]}},
        "engine": "trace",
    }


def _wait_state(job, state, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if job.state == state:
            return
        time.sleep(0.01)
    raise AssertionError(
        f"job stuck in {job.state!r} (error={job.error!r}), "
        f"wanted {state!r}"
    )


def _fib_fault_plan():
    """Every fib cell fails on every attempt; gcd is untouched."""
    return FaultPlan(rules=(
        FaultRule(kind="transient", site="cell", match="fib",
                  times=None),
    ))


class TestServiceUnderCellFaults:
    def test_faulted_job_degrades_to_error_rows_and_resubmission_recomputes_exactly_the_failed_cells(  # noqa: E501
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(FAULTS_ENV, _fib_fault_plan().to_json())
        manager = JobManager(store=str(tmp_path), workers=1)
        try:
            job, _ = manager.submit(_spec_dict())
            _wait_state(job, "done")

            # The job FINISHED (not failed): fib's 2 cells degraded
            # into structured error rows, gcd's 2 computed fine.
            assert job.error is None
            assert job.progress["done"] == 4
            assert job.progress["errors"] == 2
            assert len(job.error_rows) == 2
            assert all(r["workload"] == "fib" for r in job.error_rows)
            assert all("TransientFault" in r["error"]
                       for r in job.error_rows)
            served = json.loads(manager.job_result(job))
            errored = [c for c in served["cells"] if c.get("error")]
            assert len(errored) == 2

            # Errors are never cached: only gcd's cells were stored.
            stats = manager.store.stats()
            assert stats["puts"] == 2
            assert stats["cells"] == 2

            # Fault clears; resubmitting must NOT dedup onto the
            # error-carrying job...
            monkeypatch.delenv(FAULTS_ENV)
            retry, deduped = manager.submit(_spec_dict())
            assert not deduped and retry is not job
            _wait_state(retry, "done")

            # ...and recomputes exactly the 2 failed fib cells: gcd
            # comes from cache, misses/puts move by exactly 2.
            assert retry.error_rows == []
            assert retry.progress["hits"] == 2
            assert retry.progress["computed"] == 2
            after = manager.store.stats()
            assert after["puts"] == stats["puts"] + 2
            assert after["cells"] == 4
            assert after["misses"] == stats["misses"] + 2

            # The recovered result is byte-identical to a fault-free
            # run on a fresh store.
            clean = api.run_experiment(
                api.ExperimentSpec.from_dict(_spec_dict())
            )
            assert manager.job_result(retry) == clean.canonical_json()
        finally:
            manager.shutdown()

    def test_retry_policy_recovers_bounded_faults_cleanly(
        self, tmp_path, monkeypatch
    ):
        # 2 injected failures, 3 attempts per cell: the job recovers
        # with zero error rows and records the retries in progress.
        plan = FaultPlan(rules=(
            FaultRule(kind="transient", site="cell", match="fib",
                      times=2),
        ))
        monkeypatch.setenv(FAULTS_ENV, plan.to_json())
        manager = JobManager(
            store=str(tmp_path), workers=1,
            retry=RetryPolicy(attempts=3, backoff_base=0.0,
                              jitter=0.0),
        )
        try:
            job, _ = manager.submit(_spec_dict())
            _wait_state(job, "done")
            assert job.error_rows == []
            assert job.progress["errors"] == 0
            assert job.progress["retried"] == 2
            # A recovered cell is cacheable like any other.
            assert manager.store.stats()["cells"] == 4
            monkeypatch.delenv(FAULTS_ENV)
            clean = api.run_experiment(
                api.ExperimentSpec.from_dict(_spec_dict())
            )
            assert manager.job_result(job) == clean.canonical_json()
        finally:
            manager.shutdown()
