"""Chaos suite: sweeps must survive injected faults byte-for-byte.

Every scenario here is seeded and deterministic (``make chaos`` runs
them in CI).  The invariant under test, from ``repro.faults``: a sweep
run under an active fault plan either recovers every cell — and its
``canonical_json`` is **byte-identical** to a fault-free run — or
degrades exhausted cells into structured error rows; it never aborts,
never caches a failure, and never serves damaged store bytes.

Scenarios:

* mixed transient/hang cell faults, recovered by retry + timeout;
* corrupt CAS reads on a warm store, recovered by checksum-miss +
  recompute;
* a worker process crashing mid-cell under the parallel executor
  (pool rebuild, then serial fallback);
* store fsck: corrupt exactly N cell blobs, verify/repair, and prove
  the next cached sweep recomputes exactly those N cells;
* two processes racing one store while one of them dies mid-write.
"""

from __future__ import annotations

import multiprocessing
import os

from repro import api
from repro.faults import (
    FAULTS_ENV,
    FaultPlan,
    FaultRule,
    RetryPolicy,
    install_plan,
)
from repro.store import ExperimentStore


def _spec(**overrides):
    fields = dict(
        name="chaos",
        workloads=["fib", "gcd"],
        base={"codec": "shared-dict", "decompression": "ondemand"},
        axes=api.grid(k_compress=[1, "inf"]),
        engine="trace",
    )
    fields.update(overrides)
    return api.ExperimentSpec(**fields)


def _retry(**overrides):
    fields = dict(attempts=3, backoff_base=0.0, jitter=0.0)
    fields.update(overrides)
    return RetryPolicy(**fields)


class TestCellFaultRecovery:
    def test_mixed_transient_and_hang_faults_recover_byte_identical(
        self,
    ):
        spec = _spec()
        baseline = api.run_experiment(spec)
        plan = FaultPlan(
            rules=(
                FaultRule(kind="transient", site="cell", match="fib",
                          times=2),
                FaultRule(kind="hang", site="cell", match="gcd",
                          seconds=5.0, times=1),
            ),
            seed=1,
        )
        with install_plan(plan):
            survived = api.run_experiment(
                spec, retry=_retry(timeout=0.5)
            )
        assert survived.errors() == []
        assert survived.canonical_json() == baseline.canonical_json()

    def test_machine_engine_survives_too(self):
        spec = _spec(engine="machine")
        baseline = api.run_experiment(spec)
        plan = FaultPlan(rules=(
            FaultRule(kind="transient", site="cell", times=3),
        ))
        with install_plan(plan):
            survived = api.run_experiment(spec, retry=_retry())
        assert survived.canonical_json() == baseline.canonical_json()

    def test_exhaustion_degrades_to_error_rows_never_aborts(self):
        plan = FaultPlan(rules=(
            FaultRule(kind="transient", site="cell", match="fib",
                      times=None),
        ))
        with install_plan(plan):
            rs = api.run_experiment(_spec(), retry=_retry(attempts=2))
        # fib cells exhausted, gcd cells untouched — all rows present.
        assert len(rs.runs) == 4
        assert len(rs.errors()) == 2
        assert {r.workload for r in rs.errors()} == {"fib"}
        for cell in rs.to_dict()["cells"]:
            if "error" in cell:
                assert len(cell["attempts"]) == 2


class TestCorruptReads:
    def test_corrupt_cas_read_recomputes_and_matches(self, tmp_path):
        store = str(tmp_path / "store")
        spec = _spec()
        baseline = api.run_experiment(spec)
        warm = api.run_experiment(spec, store=store)
        assert warm.canonical_json() == baseline.canonical_json()
        plan = FaultPlan(rules=(
            FaultRule(kind="corrupt", site="cas.read", times=1),
        ))
        with install_plan(plan):
            reread = api.run_experiment(spec, store=store)
        # The poisoned read became a checksum miss: one cell was
        # recomputed instead of served, and nothing leaked into the
        # results.
        assert reread.canonical_json() == baseline.canonical_json()
        assert reread.meta["cache"]["misses"] >= 1
        assert ExperimentStore(store).stats()["corrupt_misses"] >= 1

    def test_error_rows_are_never_cached(self, tmp_path):
        store = str(tmp_path / "store")
        plan = FaultPlan(rules=(
            FaultRule(kind="transient", site="cell", match="fib",
                      times=None),
        ))
        with install_plan(plan):
            first = api.run_experiment(_spec(), store=store,
                                       retry=_retry(attempts=2))
        assert len(first.errors()) == 2
        # Chaos off: the second run recomputes the failed cells (they
        # were never cached) and comes back clean.
        second = api.run_experiment(_spec(), store=store)
        assert second.errors() == []
        assert second.meta["cache"]["misses"] == 2
        assert second.canonical_json() == \
            api.run_experiment(_spec()).canonical_json()


class TestWorkerCrash:
    def test_crashing_worker_degrades_not_corrupts(self):
        spec = _spec()
        baseline = api.run_experiment(spec)
        executor = api.ParallelExecutor(jobs=2)
        plan = FaultPlan(rules=(
            FaultRule(kind="crash", site="cell", match="fib",
                      times=1),
        ))
        with install_plan(plan):
            # Workers inherit the plan via $REPRO_FAULTS and die with
            # os._exit(70) mid-cell; each fresh worker process re-arms
            # the rule, so the rebuilt pool breaks again and the run
            # finishes on the serial fallback (where crash rules are
            # inert by design).
            survived = api.run_experiment(spec, executor=executor)
        assert survived.canonical_json() == baseline.canonical_json()
        assert executor.pool_rebuilds == 1
        assert executor.serial_fallback is True


class TestFsckAcceptance:
    def test_repair_then_recompute_exactly_the_damaged_cells(
        self, tmp_path
    ):
        from tests.integration.test_store_executor import CountingSerial
        from repro.store.executor import CachingExecutor

        store_dir = str(tmp_path / "store")
        spec = _spec()
        baseline = api.run_experiment(spec)
        api.run_experiment(spec, store=store_dir)

        # Corrupt exactly two cell-record blobs (cells/ refs point at
        # them; artifact bundles are left alone).
        store = ExperimentStore(store_dir)
        damaged = []
        for path in store._walk_refs("cells"):
            if len(damaged) == 2:
                break
            with open(path, "r", encoding="ascii") as handle:
                digest = handle.read().strip()
            blob_path = store._fan_path("objects", digest)
            with open(blob_path, "ab") as handle:
                handle.write(b"bitrot")
            damaged.append(digest)

        report = store.verify()
        assert report["corrupt_objects"] == 2
        assert report["dangling_refs"] == 2
        assert not report["ok"]

        repair = store.verify(repair=True)
        assert repair["quarantined"] == 2
        assert repair["pruned_refs"] == 2
        for digest in damaged:
            assert os.path.exists(
                os.path.join(store_dir, "quarantine", digest)
            )
        assert store.verify()["ok"]

        # The next cached sweep recomputes exactly the two quarantined
        # cells and restores a byte-identical result set.
        counting = CountingSerial()
        executor = CachingExecutor(store=store_dir, inner=counting)
        healed = api.run_experiment(spec, executor=executor)
        assert counting.cells_computed == 2
        assert executor.hits == 2
        assert healed.canonical_json() == baseline.canonical_json()
        assert ExperimentStore(store_dir).verify()["ok"]


def _racing_worker(store_dir, barrier, crash):
    """One of two processes racing the same cells into one store; with
    ``crash`` the first CAS write kills this process mid-write."""
    if crash:
        plan = FaultPlan(rules=(
            FaultRule(kind="crash", site="cas.write", times=1),
        ))
        os.environ[FAULTS_ENV] = plan.to_json()
    from repro import api as worker_api

    spec = worker_api.ExperimentSpec(
        name="chaos",
        workloads=["fib", "gcd"],
        base={"codec": "shared-dict", "decompression": "ondemand"},
        axes=worker_api.grid(k_compress=[1, "inf"]),
        engine="trace",
    )
    barrier.wait(timeout=60)
    result = worker_api.run_experiment(spec, store=store_dir)
    if result.failures():
        raise SystemExit(3)


class TestConcurrentCrash:
    def test_store_survives_a_writer_dying_mid_write(self, tmp_path):
        store_dir = str(tmp_path / "store")
        context = multiprocessing.get_context("fork")
        barrier = context.Barrier(2)
        workers = [
            context.Process(target=_racing_worker,
                            args=(store_dir, barrier, crash))
            for crash in (True, False)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
        # The chaos child died with the injected crash exit code; the
        # clean child finished.
        assert workers[0].exitcode == 70
        assert workers[1].exitcode == 0
        # The store is consistent — no torn object is visible (the
        # crash lost a .tmp at worst) — and a run in this process is
        # byte-equal to a fault-free recomputation.
        spec = _spec()
        survivor = api.run_experiment(spec, store=store_dir)
        assert survivor.errors() == []
        assert survivor.canonical_json() == \
            api.run_experiment(spec).canonical_json()
        report = ExperimentStore(store_dir).verify()
        assert report["corrupt_objects"] == 0
        assert report["dangling_refs"] == 0


class TestBatchedReplayChaos:
    """The batched trace-replay kernel composes with fault injection.

    Trace-engine cells run inside the batched kernel's envelope
    (:mod:`repro.core.replay`); an injected ``$REPRO_FAULTS`` transient
    must surface as a normal cell fault that per-cell retry recovers.
    Faulted cells re-run on the exact per-block path (engine
    ``"machine"``), untouched cells stay on the batched replay, and the
    canonical results are byte-identical to a fault-free sweep either
    way.
    """

    def test_replay_faults_recover_byte_identical(self, monkeypatch):
        spec = _spec()  # engine="trace": every cell replays
        baseline = api.run_experiment(spec)
        assert all(
            run.result.engine == "trace" for run in baseline.runs
        )
        plan = FaultPlan(
            rules=(
                FaultRule(kind="transient", site="cell", match="fib",
                          times=2),
                FaultRule(kind="hang", site="cell", match="gcd",
                          seconds=5.0, times=1),
            ),
            seed=9,
        )
        monkeypatch.setenv(FAULTS_ENV, plan.to_json())
        survived = api.run_experiment(
            spec, retry=_retry(timeout=0.5)
        )
        assert survived.errors() == []
        # Faulted cells were re-run on the exact per-block path;
        # untouched cells stayed on the batched replay.
        engines = {
            run.workload: {r.result.engine for r in survived.runs
                           if r.workload == run.workload}
            for run in survived.runs
        }
        assert engines["fib"] == {"machine"}  # both cells faulted
        assert engines["gcd"] == {"machine", "trace"}  # one hang fired
        # Either way the metrics agree byte-for-byte with fault-free.
        assert survived.canonical_json() == baseline.canonical_json()

    def test_exhausted_replay_cell_degrades_to_error_row(
        self, monkeypatch
    ):
        plan = FaultPlan(rules=(
            FaultRule(kind="transient", site="cell", match="fib",
                      times=None),
        ))
        monkeypatch.setenv(FAULTS_ENV, plan.to_json())
        rs = api.run_experiment(_spec(), retry=_retry(attempts=2))
        # fib exhausted into error rows; gcd still replayed cleanly.
        assert len(rs.runs) == 4
        assert {r.workload for r in rs.errors()} == {"fib"}
        clean = [r for r in rs.runs if r.error is None]
        assert clean and all(
            run.result.engine == "trace" for run in clean
        )
